"""The join-order MDP: left-deep order construction over a query.

State: the ordered prefix of tables already joined.  Action: append any
table connected (in the query's join graph) to the current prefix -- or any
table when the prefix is empty.  Terminal: all tables joined.  The reward
is supplied by the caller (estimated cost for offline methods, simulated
latency for online ones).

:func:`plan_from_order` turns a completed order into a physical plan by
choosing the cheapest scan / join method per step under the native cost
model -- the same operator-selection convention DQ/ReJoin/RTOS use.
"""

from __future__ import annotations

from repro.engine.plans import JoinNode, Plan, PlanNode
from repro.optimizer.cost import PlanCoster
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import _best_join, _best_scan, _join_conditions_between
from repro.sql.query import Query

__all__ = ["JoinOrderEnv", "plan_from_order"]


def plan_from_order(
    query: Query,
    order: list[str],
    coster: PlanCoster,
    hints: HintSet | None = None,
) -> Plan:
    """Left-deep plan for the given table order, cheapest operators per step."""
    hints = hints if hints is not None else HintSet.default()
    if sorted(order) != sorted(query.tables):
        raise ValueError(f"order {order} does not cover query tables {query.tables}")
    card_of: dict[frozenset[str], float] = {}

    def card(tables: frozenset[str]) -> float:
        if tables not in card_of:
            card_of[tables] = coster.subquery_cardinality(query, tables)
        return card_of[tables]

    current, cost = _best_scan(query, order[0], coster, hints)
    card(current.tables)
    for table in order[1:]:
        right, right_cost = _best_scan(query, table, coster, hints)
        conditions = _join_conditions_between(
            query, current.tables, right.tables
        )
        if not conditions:
            raise ValueError(
                f"table {table!r} not connected to prefix {sorted(current.tables)}"
            )
        card(right.tables)
        card(current.tables | right.tables)
        best = _best_join(
            query,
            (current, cost),
            (right, right_cost),
            conditions,
            coster,
            hints,
            card_of,
        )
        assert best is not None
        current, cost = best
    return Plan(query, current)


class JoinOrderEnv:
    """Left-deep join-order construction environment for one query."""

    def __init__(self, query: Query) -> None:
        self.query = query
        self.tables = list(query.tables)
        self._adj: dict[str, set[str]] = {t: set() for t in self.tables}
        for j in query.joins:
            self._adj[j.left.table].add(j.right.table)
            self._adj[j.right.table].add(j.left.table)
        self.reset()

    def reset(self) -> list[str]:
        self.prefix: list[str] = []
        return self.prefix

    @property
    def done(self) -> bool:
        return len(self.prefix) == len(self.tables)

    def valid_actions(self) -> list[str]:
        """Tables that can legally extend the current prefix."""
        if not self.prefix:
            return list(self.tables)
        joined = set(self.prefix)
        return sorted(
            t
            for t in self.tables
            if t not in joined and self._adj[t] & joined
        )

    def step(self, table: str) -> list[str]:
        if table in self.prefix:
            raise ValueError(f"table {table!r} already joined")
        if table not in self.valid_actions():
            raise ValueError(
                f"table {table!r} is not a valid extension of {self.prefix}"
            )
        self.prefix.append(table)
        return self.prefix
