"""DQ / ReJoin-style offline RL join-order search [15, 24].

A neural state-action value function is trained with delayed episode
rewards (ReJoin's convention: every step of an episode receives the final
plan's negative log cost), epsilon-greedy exploration and a replay buffer
refit periodically.  After training, :meth:`search` runs the greedy policy
to produce a plan.

Features: joined-set one-hot + candidate-table one-hot + progress + log
estimated cardinality of the current intermediate -- the "simple neural
architecture" the tutorial notes limits these early methods, preserved
deliberately so RTOS's richer representation has something to beat.
"""

from __future__ import annotations

import math

import numpy as np

from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.ml.nn import MLP
from repro.optimizer.cost import PlanCoster
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["DQJoinOrderSearch"]


class DQJoinOrderSearch:
    """Q-learning join-order search with an MLP value function."""

    name = "dq"

    def __init__(
        self,
        optimizer: Optimizer,
        hidden: tuple[int, ...] = (64,),
        epsilon: float = 0.3,
        refit_every: int = 40,
        seed: int = 0,
    ) -> None:
        self.optimizer = optimizer
        self.coster: PlanCoster = optimizer.coster
        self.tables = list(optimizer.db.table_names)
        self._pos = {t: i for i, t in enumerate(self.tables)}
        self.epsilon = epsilon
        self.refit_every = refit_every
        self._rng = np.random.default_rng(seed)
        dim = 2 * len(self.tables) + 2
        self._net = MLP(dim, hidden, 1, seed=seed)
        self._buffer_x: list[np.ndarray] = []
        self._buffer_y: list[float] = []
        self._episodes = 0
        self._trained = False

    # -- features --------------------------------------------------------------

    def _features(self, query: Query, prefix: list[str], action: str) -> np.ndarray:
        joined = np.zeros(len(self.tables))
        for t in prefix:
            joined[self._pos[t]] = 1.0
        act = np.zeros(len(self.tables))
        act[self._pos[action]] = 1.0
        if prefix:
            card = self.coster.subquery_cardinality(query, frozenset(prefix))
        else:
            card = 0.0
        extra = np.array(
            [len(prefix) / max(len(query.tables), 1), math.log1p(card) / 20.0]
        )
        return np.concatenate([joined, act, extra])

    def _q(self, query: Query, prefix: list[str], actions: list[str]) -> np.ndarray:
        x = np.stack([self._features(query, prefix, a) for a in actions])
        if not self._trained:
            return self._rng.random(len(actions))
        return np.atleast_1d(self._net.predict(x))

    # -- training --------------------------------------------------------------------

    def _episode_reward(self, query: Query, order: list[str]) -> float:
        plan = plan_from_order(query, order, self.coster)
        return -math.log1p(max(self.optimizer.cost(plan), 0.0))

    def train_episode(self, query: Query) -> float:
        """One epsilon-greedy episode; returns the episode reward."""
        env = JoinOrderEnv(query)
        steps: list[np.ndarray] = []
        while not env.done:
            actions = env.valid_actions()
            if self._rng.random() < self.epsilon or not self._trained:
                choice = actions[self._rng.integers(len(actions))]
            else:
                qvals = self._q(query, env.prefix, actions)
                choice = actions[int(qvals.argmax())]
            steps.append(self._features(query, env.prefix, choice))
            env.step(choice)
        reward = self._episode_reward(query, env.prefix)
        for x in steps:
            self._buffer_x.append(x)
            self._buffer_y.append(reward)
        self._episodes += 1
        if self._episodes % self.refit_every == 0:
            self._refit()
        return reward

    def train(self, queries: list[Query], episodes_per_query: int = 8) -> None:
        for _ in range(episodes_per_query):
            for q in queries:
                if q.n_tables >= 2:
                    self.train_episode(q)
        self._refit()

    def _refit(self) -> None:
        if len(self._buffer_y) < 20:
            return
        x = np.stack(self._buffer_x[-4000:])
        y = np.array(self._buffer_y[-4000:])
        self._net.fit(x, y, epochs=40, lr=2e-3)
        self._trained = True

    # -- inference -------------------------------------------------------------------

    def search(self, query: Query):
        """Greedy-policy plan for the query."""
        env = JoinOrderEnv(query)
        while not env.done:
            actions = env.valid_actions()
            qvals = self._q(query, env.prefix, actions)
            env.step(actions[int(qvals.argmax())])
        return plan_from_order(query, env.prefix, self.coster)
