"""RTOS-style join-order search with tree-structured states [73].

RTOS's advance over DQ/ReJoin is representing the partial join *tree* with
a recursive neural encoder instead of flat set one-hots.  Here the state
value ``V(partial plan)`` is a tree-convolution network over the partial
left-deep tree (plus the not-yet-joined scans); actions are scored by the
value of the state they lead to, trained by Monte-Carlo regression on
final plan costs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import JoinNode, PlanNode, ScanNode
from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.ml.treeconv import TreeConvNet
from repro.optimizer.planner import Optimizer, _join_conditions_between
from repro.sql.query import Query

__all__ = ["RTOSJoinOrderSearch"]


class RTOSJoinOrderSearch:
    """Tree-structured-state join-order search (RTOS-lite)."""

    name = "rtos"

    def __init__(
        self,
        optimizer: Optimizer,
        epsilon: float = 0.3,
        refit_every: int = 40,
        seed: int = 0,
    ) -> None:
        self.optimizer = optimizer
        self.coster = optimizer.coster
        self.featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        self.epsilon = epsilon
        self.refit_every = refit_every
        self._rng = np.random.default_rng(seed)
        self._net = TreeConvNet(
            self.featurizer.node_dim, conv_channels=(32, 32), head_hidden=(16,), seed=seed
        )
        self._buffer: list[tuple] = []
        self._targets: list[float] = []
        self._episodes = 0
        self._trained = False

    # -- state encoding -------------------------------------------------------------

    def _partial_tree(self, query: Query, prefix: list[str]):
        """Tree arrays of the partial left-deep plan over ``prefix``."""
        node: PlanNode = ScanNode(
            table=prefix[0], predicates=query.predicates_on(prefix[0])
        )
        for t in prefix[1:]:
            right = ScanNode(table=t, predicates=query.predicates_on(t))
            conditions = _join_conditions_between(query, node.tables, right.tables)
            node = JoinNode(node, right, conditions=conditions)
        feats, left, right_idx = [], [], []

        def visit(n: PlanNode) -> int:
            my = len(feats)
            sub = query.subquery(n.tables)
            est = max(self.optimizer.estimator.estimate(sub), 0.0)
            vec = self._node_vec(n, est)
            feats.append(vec)
            left.append(-1)
            right_idx.append(-1)
            if isinstance(n, JoinNode):
                left[my] = visit(n.left)
                right_idx[my] = visit(n.right)
            return my

        visit(node)
        return np.stack(feats), np.array(left), np.array(right_idx)

    def _node_vec(self, node: PlanNode, est_card: float) -> np.ndarray:
        # Reuse the cost-model featurizer layout via a synthetic encoding:
        # operator one-hot slots (scan/join generic), table one-hot, extras.
        n_ops = 5
        tables = self.featurizer.tables
        vec = np.zeros(self.featurizer.node_dim)
        if isinstance(node, ScanNode):
            vec[0] = 1.0
            vec[n_ops + tables.index(node.table)] = 1.0
            n_preds = len(node.predicates) / 4.0
        else:
            vec[2] = 1.0  # generic join slot
            n_preds = 0.0
        base = n_ops + len(tables)
        vec[base] = math.log1p(est_card) / 20.0
        vec[base + 1] = len(node.tables) / max(len(tables), 1)
        vec[base + 2] = n_preds
        return vec

    # -- training ------------------------------------------------------------------

    def train_episode(self, query: Query) -> float:
        env = JoinOrderEnv(query)
        states = []
        while not env.done:
            actions = env.valid_actions()
            if self._rng.random() < self.epsilon or not self._trained:
                choice = actions[self._rng.integers(len(actions))]
            else:
                values = [
                    self._net.predict([self._partial_tree(query, env.prefix + [a])])[0]
                    for a in actions
                ]
                choice = actions[int(np.argmax(values))]
            env.step(choice)
            states.append(self._partial_tree(query, list(env.prefix)))
        plan = plan_from_order(query, env.prefix, self.coster)
        reward = -math.log1p(max(self.optimizer.cost(plan), 0.0))
        for s in states:
            self._buffer.append(s)
            self._targets.append(reward)
        self._episodes += 1
        if self._episodes % self.refit_every == 0:
            self._refit()
        return reward

    def train(self, queries: list[Query], episodes_per_query: int = 6) -> None:
        for _ in range(episodes_per_query):
            for q in queries:
                if q.n_tables >= 2:
                    self.train_episode(q)
        self._refit()

    def _refit(self) -> None:
        if len(self._targets) < 20:
            return
        trees = self._buffer[-2000:]
        y = np.array(self._targets[-2000:])
        self._net.fit(trees, y, epochs=25, lr=1e-3)
        self._trained = True

    # -- inference -----------------------------------------------------------------

    def search(self, query: Query):
        env = JoinOrderEnv(query)
        while not env.done:
            actions = env.valid_actions()
            if self._trained:
                values = [
                    self._net.predict([self._partial_tree(query, env.prefix + [a])])[0]
                    for a in actions
                ]
                choice = actions[int(np.argmax(values))]
            else:
                choice = actions[0]
            env.step(choice)
        return plan_from_order(query, env.prefix, self.coster)
