"""Tree convolution over binary plan trees (Mou et al. [41]).

This is the neural architecture used by Neo [38], Bao [37] and the
tree-convolution cost model of Marcus & Papaemmanouil [39]: each plan-tree
node carries a feature vector; a *tree convolution* layer maps every node to
a new vector computed from the concatenation of (node, left child, right
child) features; after a stack of such layers, dynamic max-pooling over all
nodes yields a fixed-size plan embedding which a small MLP head maps to the
prediction (cost / latency / preference score).

Trees of different shapes are batched by flattening all nodes of all trees
into one array with a shared "null" row at index 0 standing in for missing
children, which lets both the forward and the backward pass be fully
vectorized with numpy gather/scatter operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.ml.nn import Adam, mse_loss, binary_cross_entropy_loss

__all__ = ["PlanTreeBatch", "TreeConvNet"]


@dataclass
class PlanTreeBatch:
    """A batch of binary trees flattened for vectorized tree convolution.

    Attributes
    ----------
    features:
        ``[1 + total_nodes, node_dim]`` array; row 0 is the all-zero null
        node used as the child of leaves.
    left, right:
        ``[total_nodes]`` int arrays indexing into ``features`` (0 = null).
    tree_slices:
        per-tree ``(start, stop)`` ranges into rows ``1..total_nodes`` of
        ``features`` (offsets already include the +1 null-row shift).
    """

    features: np.ndarray
    left: np.ndarray
    right: np.ndarray
    tree_slices: list[tuple[int, int]]

    @property
    def n_trees(self) -> int:
        return len(self.tree_slices)

    @classmethod
    def from_trees(
        cls, trees: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> "PlanTreeBatch":
        """Build a batch from ``(features, left, right)`` triples.

        Each tree supplies node ``features`` of shape ``[n, d]`` and per-node
        child indices ``left``/``right`` in ``[-1, n)``, where ``-1`` means
        "no child".
        """
        if not trees:
            raise ValueError("cannot batch zero trees")
        node_dim = np.asarray(trees[0][0]).shape[1]
        all_feats = [np.zeros((1, node_dim))]
        all_left: list[np.ndarray] = []
        all_right: list[np.ndarray] = []
        slices: list[tuple[int, int]] = []
        offset = 1  # row 0 is the null node
        for feats, left, right in trees:
            feats = np.asarray(feats, dtype=float)
            left = np.asarray(left, dtype=int)
            right = np.asarray(right, dtype=int)
            n = feats.shape[0]
            if feats.ndim != 2 or feats.shape[1] != node_dim:
                raise ValueError("inconsistent node feature dimensions in batch")
            if left.shape != (n,) or right.shape != (n,):
                raise ValueError("child index arrays must have one entry per node")
            if n == 0:
                raise ValueError("cannot batch an empty tree")
            # Shift child indices into the global array; -1 becomes the null row.
            all_left.append(np.where(left >= 0, left + offset, 0))
            all_right.append(np.where(right >= 0, right + offset, 0))
            all_feats.append(feats)
            slices.append((offset, offset + n))
            offset += n
        return cls(
            features=np.concatenate(all_feats, axis=0),
            left=np.concatenate(all_left),
            right=np.concatenate(all_right),
            tree_slices=slices,
        )


class _TreeConvLayer:
    """One tree-convolution layer: ``h_v = relu([x_v ; x_l ; x_r] W + b)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator) -> None:
        scale = math.sqrt(2.0 / (3 * in_dim))
        self.w = rng.normal(0.0, scale, size=(3 * in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self.in_dim = in_dim

    def forward(self, x: np.ndarray, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        # x: [1+N, in_dim] with null row 0.  Output: [1+N, out_dim].
        self._concat = np.concatenate([x[1:], x[left], x[right]], axis=1)
        self._left, self._right = left, right
        pre = self._concat @ self.w + self.b
        self._mask = pre > 0
        out = np.zeros((x.shape[0], self.w.shape[1]))
        out[1:] = pre * self._mask
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # grad_out: [1+N, out_dim]; row 0 is ignored (null node has no grad).
        g = grad_out[1:] * self._mask
        self.dw = self._concat.T @ g
        self.db = g.sum(axis=0)
        d_concat = g @ self.w.T
        d = self.in_dim
        grad_in = np.zeros((grad_out.shape[0], d))
        grad_in[1:] += d_concat[:, :d]
        np.add.at(grad_in, self._left, d_concat[:, d : 2 * d])
        np.add.at(grad_in, self._right, d_concat[:, 2 * d :])
        grad_in[0] = 0.0
        return grad_in

    def parameters(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dw, self.db]


class _DenseRelu:
    """Dense + optional ReLU used in the pooled head."""

    def __init__(
        self, in_dim: int, out_dim: int, rng: np.random.Generator, relu: bool = True
    ) -> None:
        scale = math.sqrt(2.0 / in_dim) if relu else math.sqrt(1.0 / in_dim)
        self.w = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self.relu = relu

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        out = x @ self.w + self.b
        if self.relu:
            self._mask = out > 0
            out = out * self._mask
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self.relu:
            grad = grad * self._mask
        self.dw = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.w.T

    def parameters(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dw, self.db]


class TreeConvNet:
    """Tree-convolution network: conv stack -> max pool -> MLP head.

    Parameters
    ----------
    node_dim:
        Dimension of per-node feature vectors.
    conv_channels:
        Output widths of the tree-convolution layers.
    head_hidden:
        Hidden widths of the MLP head applied to the pooled embedding.
    out_dim:
        Output dimension (1 for cost regression).
    sigmoid_output:
        If True the output is passed through a sigmoid (used for pairwise
        preference models such as Lero's plan comparator).
    """

    def __init__(
        self,
        node_dim: int,
        conv_channels: Sequence[int] = (64, 64),
        head_hidden: Sequence[int] = (32,),
        out_dim: int = 1,
        *,
        sigmoid_output: bool = False,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.node_dim = node_dim
        self.out_dim = out_dim
        self.sigmoid_output = sigmoid_output
        self.conv_layers: list[_TreeConvLayer] = []
        prev = node_dim
        for width in conv_channels:
            self.conv_layers.append(_TreeConvLayer(prev, width, rng))
            prev = width
        self.head: list[_DenseRelu] = []
        for width in head_hidden:
            self.head.append(_DenseRelu(prev, width, rng, relu=True))
            prev = width
        self.head.append(_DenseRelu(prev, out_dim, rng, relu=False))

    # -- forward / backward ---------------------------------------------------

    def embed(self, batch: PlanTreeBatch) -> np.ndarray:
        """Return the pooled plan embedding (before the head), ``[B, C]``."""
        x = batch.features
        for layer in self.conv_layers:
            x = layer.forward(x, batch.left, batch.right)
        pooled = np.empty((batch.n_trees, x.shape[1]))
        self._argmax: list[np.ndarray] = []
        for i, (start, stop) in enumerate(batch.tree_slices):
            rows = x[start:stop]
            arg = rows.argmax(axis=0)
            self._argmax.append(arg + start)
            pooled[i] = rows[arg, np.arange(rows.shape[1])]
        self._last_x_shape = x.shape
        return pooled

    def forward(self, batch: PlanTreeBatch) -> np.ndarray:
        pooled = self.embed(batch)
        h = pooled
        for layer in self.head:
            h = layer.forward(h)
        if self.sigmoid_output:
            self._sig = 1.0 / (1.0 + np.exp(-np.clip(h, -60, 60)))
            return self._sig
        return h

    def _backward(self, batch: PlanTreeBatch, grad: np.ndarray) -> None:
        if self.sigmoid_output:
            grad = grad * self._sig * (1.0 - self._sig)
        for layer in reversed(self.head):
            grad = layer.backward(grad)
        # Un-pool: route each pooled gradient to the argmax node.
        grad_nodes = np.zeros(self._last_x_shape)
        for i in range(batch.n_trees):
            cols = np.arange(grad_nodes.shape[1])
            np.add.at(grad_nodes, (self._argmax[i], cols), grad[i])
        g = grad_nodes
        for layer in reversed(self.conv_layers):
            g = layer.backward(g)

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for layer in self.conv_layers:
            params.extend(layer.parameters())
        for layer in self.head:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for layer in self.conv_layers:
            grads.extend(layer.gradients())
        for layer in self.head:
            grads.extend(layer.gradients())
        return grads

    # -- training / inference ---------------------------------------------------

    def fit(
        self,
        trees: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]],
        y: np.ndarray,
        *,
        epochs: int = 60,
        batch_size: int = 32,
        lr: float = 1e-3,
        loss: str = "mse",
        seed: int = 0,
        verbose: bool = False,
    ) -> list[float]:
        """Train on a corpus of trees; returns per-epoch losses."""
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if len(trees) != y.shape[0]:
            raise ValueError("number of trees and targets differ")
        if len(trees) == 0:
            raise ValueError("cannot fit on an empty corpus")
        loss_fn = {"mse": mse_loss, "bce": binary_cross_entropy_loss}[loss]
        rng = np.random.default_rng(seed)
        opt = Adam(lr=lr)
        losses: list[float] = []
        n = len(trees)
        for epoch in range(epochs):
            order = rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = PlanTreeBatch.from_trees([trees[i] for i in idx])
                pred = self.forward(batch)
                value, grad = loss_fn(pred, y[idx])
                self._backward(batch, grad)
                opt.step(self.parameters(), self.gradients())
                total += value
                batches += 1
            losses.append(total / max(batches, 1))
            if verbose and epoch % 10 == 0:
                print(f"treeconv epoch {epoch}: loss={losses[-1]:.6f}")
        return losses

    def predict(
        self, trees: Sequence[tuple[np.ndarray, np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        if not trees:
            return np.zeros((0, self.out_dim))
        out = self.forward(PlanTreeBatch.from_trees(trees))
        return out[:, 0] if self.out_dim == 1 else out
