"""Chow-Liu dependency trees over discrete columns.

The classic structure-learning algorithm behind the Bayesian-network
cardinality estimators (Tzoumas et al. [57], BayesCard [65]): compute
pairwise mutual information between all column pairs, take the maximum
spanning tree, and orient it away from a root to obtain a tree-shaped
Bayesian network that provably maximizes likelihood among trees.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mutual_information", "chow_liu_tree"]


def mutual_information(a: np.ndarray, b: np.ndarray) -> float:
    """Mutual information (nats) between two integer-coded columns."""
    a = np.asarray(a, dtype=int)
    b = np.asarray(b, dtype=int)
    if a.shape != b.shape:
        raise ValueError("columns must have equal length")
    n = a.shape[0]
    if n == 0:
        return 0.0
    ka, kb = int(a.max()) + 1, int(b.max()) + 1
    joint = np.zeros((ka, kb))
    np.add.at(joint, (a, b), 1.0)
    joint /= n
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nz = joint > 0
    outer = pa[:, None] * pb[None, :]
    return float((joint[nz] * np.log(joint[nz] / outer[nz])).sum())


def chow_liu_tree(
    data: np.ndarray, root: int = 0
) -> list[tuple[int, int]]:
    """Learn a Chow-Liu tree; returns directed edges ``(parent, child)``.

    ``data`` is ``[n_rows, n_cols]`` integer-coded.  The returned edge list
    covers every non-root column exactly once as a child; disconnected
    components (possible only with one column) yield an empty list.
    """
    data = np.asarray(data, dtype=int)
    if data.ndim != 2:
        raise ValueError("data must be 2-D")
    m = data.shape[1]
    if m <= 1:
        return []

    # Pairwise MI as edge weights; maximum spanning tree via Prim.
    weights = np.zeros((m, m))
    for i in range(m):
        for j in range(i + 1, m):
            w = mutual_information(data[:, i], data[:, j])
            weights[i, j] = weights[j, i] = w

    in_tree = {root}
    parent = {root: -1}
    edges: list[tuple[int, int]] = []
    while len(in_tree) < m:
        best_w, best_edge = -1.0, None
        for u in in_tree:
            for v in range(m):
                if v not in in_tree and weights[u, v] > best_w:
                    best_w = weights[u, v]
                    best_edge = (u, v)
        assert best_edge is not None
        u, v = best_edge
        in_tree.add(v)
        parent[v] = u
        edges.append((u, v))
    return edges
