"""A small feed-forward neural-network framework on numpy.

Implements exactly what the learned-query-optimizer models in this repository
need: dense layers, common activations, dropout, the Adam optimizer, and a
convenience :class:`MLP` wrapper with mini-batch training, early stopping and
both MSE and q-error-style losses.

The design follows the classic layer protocol: each layer exposes
``forward(x, training)`` and ``backward(grad)``; ``backward`` must be called
in reverse order of ``forward`` and returns the gradient with respect to the
layer input while accumulating parameter gradients internally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Adam",
    "SGD",
    "MLP",
    "mse_loss",
    "mae_loss",
    "q_error_loss",
    "binary_cross_entropy_loss",
]


class Layer:
    """Base class for all layers.

    Subclasses must implement :meth:`forward` and :meth:`backward` and may
    expose trainable parameters through :meth:`parameters` /
    :meth:`gradients` (parallel lists of arrays).
    """

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[np.ndarray]:
        return []

    def gradients(self) -> list[np.ndarray]:
        return []


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He/Xavier init."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        *,
        init: str = "he",
        rng: np.random.Generator | None = None,
    ) -> None:
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"Dense dims must be positive, got {in_dim}x{out_dim}")
        rng = rng if rng is not None else np.random.default_rng(0)
        if init == "he":
            scale = math.sqrt(2.0 / in_dim)
        elif init == "xavier":
            scale = math.sqrt(1.0 / in_dim)
        else:
            raise ValueError(f"unknown init {init!r}")
        self.w = rng.normal(0.0, scale, size=(in_dim, out_dim))
        self.b = np.zeros(out_dim)
        self.dw = np.zeros_like(self.w)
        self.db = np.zeros_like(self.b)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        return x @ self.w + self.b

    def backward(self, grad: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward"
        self.dw = self._x.T @ grad
        self.db = grad.sum(axis=0)
        return grad @ self.w.T

    def parameters(self) -> list[np.ndarray]:
        return [self.w, self.b]

    def gradients(self) -> list[np.ndarray]:
        return [self.dw, self.db]


class ReLU(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._mask


class LeakyReLU(Layer):
    def __init__(self, alpha: float = 0.01) -> None:
        self.alpha = alpha

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return np.where(self._mask, grad, self.alpha * grad)


class Sigmoid(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        # Numerically stable sigmoid.
        out = np.empty_like(x, dtype=float)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        self._out = out
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * self._out * (1.0 - self._out)


class Tanh(Layer):
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad * (1.0 - self._out**2)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator | None = None) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad
        return grad * self._mask


class LayerNorm(Layer):
    """Layer normalization over the feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = np.ones(dim)
        self.beta = np.zeros(dim)
        self.dgamma = np.zeros(dim)
        self.dbeta = np.zeros(dim)
        self.eps = eps

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._mu = x.mean(axis=-1, keepdims=True)
        self._var = x.var(axis=-1, keepdims=True)
        self._xhat = (x - self._mu) / np.sqrt(self._var + self.eps)
        return self.gamma * self._xhat + self.beta

    def backward(self, grad: np.ndarray) -> np.ndarray:
        xhat, var = self._xhat, self._var
        n = xhat.shape[-1]
        self.dgamma = (grad * xhat).sum(axis=tuple(range(grad.ndim - 1)))
        self.dbeta = grad.sum(axis=tuple(range(grad.ndim - 1)))
        dxhat = grad * self.gamma
        inv_std = 1.0 / np.sqrt(var + self.eps)
        return (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        ) * inv_std

    def parameters(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]

    def gradients(self) -> list[np.ndarray]:
        return [self.dgamma, self.dbeta]


class Sequential(Layer):
    """A simple container running layers in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training=training)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]


class SGD:
    """Plain SGD with optional momentum."""

    def __init__(self, lr: float = 0.01, momentum: float = 0.0) -> None:
        self.lr = lr
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v


class Adam:
    """Adam optimizer (Kingma & Ba) operating in-place on parameter arrays."""

    def __init__(
        self,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            if self.weight_decay:
                g = g + self.weight_decay * p
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


# ---------------------------------------------------------------------------
# Losses.  Each returns (loss_value, gradient_wrt_prediction).
# ---------------------------------------------------------------------------


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    diff = pred - target
    n = max(pred.size, 1)
    return float((diff**2).mean()), (2.0 / n) * diff


def mae_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    diff = pred - target
    n = max(pred.size, 1)
    return float(np.abs(diff).mean()), np.sign(diff) / n


def q_error_loss(pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
    """Symmetric log-space loss: MSE on values already in log space.

    Minimizing squared error in log space directly minimizes
    ``log(q_error)^2`` when both pred and target are log-cardinalities, which
    is the standard training objective for learned cardinality estimators.
    """
    return mse_loss(pred, target)


def binary_cross_entropy_loss(
    pred: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray]:
    """BCE on probabilities in (0, 1); gradient w.r.t. the probability."""
    eps = 1e-9
    p = np.clip(pred, eps, 1.0 - eps)
    loss = -(target * np.log(p) + (1.0 - target) * np.log(1.0 - p)).mean()
    n = max(pred.size, 1)
    grad = (p - target) / (p * (1.0 - p)) / n
    return float(loss), grad


_LOSSES: dict[str, Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]]] = {
    "mse": mse_loss,
    "mae": mae_loss,
    "q_error": q_error_loss,
    "bce": binary_cross_entropy_loss,
}


@dataclass
class TrainLog:
    """Per-epoch training diagnostics returned by :meth:`MLP.fit`."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    stopped_early: bool = False

    @property
    def epochs(self) -> int:
        return len(self.train_losses)


class MLP:
    """A multi-layer perceptron with a sklearn-like ``fit``/``predict`` API.

    Parameters
    ----------
    in_dim:
        Input feature dimension.
    hidden:
        Sizes of hidden layers, e.g. ``(64, 64)``.
    out_dim:
        Output dimension (1 for scalar regression).
    activation:
        ``"relu"``, ``"tanh"`` or ``"sigmoid"``.
    output_activation:
        Optional activation on the output layer (``"sigmoid"`` for
        probabilities, ``None`` for regression).
    dropout:
        Dropout rate applied after each hidden activation.
    seed:
        Seed for weight init, batching and dropout; training is deterministic
        for a fixed seed.
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Sequence[int] = (64, 64),
        out_dim: int = 1,
        *,
        activation: str = "relu",
        output_activation: str | None = None,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.in_dim = in_dim
        self.out_dim = out_dim
        rng = np.random.default_rng(seed)
        acts = {"relu": ReLU, "tanh": Tanh, "sigmoid": Sigmoid, "leaky_relu": LeakyReLU}
        if activation not in acts:
            raise ValueError(f"unknown activation {activation!r}")
        layers: list[Layer] = []
        prev = in_dim
        for width in hidden:
            layers.append(Dense(prev, width, rng=rng))
            layers.append(acts[activation]())
            if dropout > 0.0:
                layers.append(Dropout(dropout, rng=rng))
            prev = width
        layers.append(Dense(prev, out_dim, init="xavier", rng=rng))
        if output_activation is not None:
            if output_activation not in acts:
                raise ValueError(f"unknown output activation {output_activation!r}")
            layers.append(acts[output_activation]())
        self.net = Sequential(layers)
        self._rng = rng
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None

    # -- normalization ------------------------------------------------------

    def _fit_normalizer(self, x: np.ndarray) -> None:
        self._x_mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0
        self._x_std = std

    def _normalize(self, x: np.ndarray) -> np.ndarray:
        if self._x_mean is None:
            return x
        return (x - self._x_mean) / self._x_std

    # -- training -----------------------------------------------------------

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 100,
        batch_size: int = 64,
        lr: float = 1e-3,
        loss: str = "mse",
        weight_decay: float = 0.0,
        val_fraction: float = 0.0,
        patience: int = 10,
        sample_weight: np.ndarray | None = None,
        normalize: bool = True,
        verbose: bool = False,
    ) -> TrainLog:
        """Train with Adam and mini-batches; returns a :class:`TrainLog`.

        When ``val_fraction > 0`` a validation split is held out and early
        stopping with the given ``patience`` restores the best weights.
        """
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if loss not in _LOSSES:
            raise ValueError(f"unknown loss {loss!r}; choose from {sorted(_LOSSES)}")
        loss_fn = _LOSSES[loss]

        if normalize:
            self._fit_normalizer(x)
        x = self._normalize(x)

        if sample_weight is not None:
            sample_weight = np.asarray(sample_weight, dtype=float)
            if sample_weight.shape[0] != x.shape[0]:
                raise ValueError("sample_weight length mismatch")

        n = x.shape[0]
        val_x = val_y = None
        if val_fraction > 0.0 and n >= 10:
            idx = self._rng.permutation(n)
            n_val = max(1, int(n * val_fraction))
            val_idx, train_idx = idx[:n_val], idx[n_val:]
            val_x, val_y = x[val_idx], y[val_idx]
            x, y = x[train_idx], y[train_idx]
            if sample_weight is not None:
                sample_weight = sample_weight[train_idx]
            n = x.shape[0]

        opt = Adam(lr=lr, weight_decay=weight_decay)
        log = TrainLog()
        best_val = math.inf
        best_params: list[np.ndarray] | None = None
        bad_epochs = 0

        for epoch in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                pred = self.net.forward(x[batch], training=True)
                value, grad = loss_fn(pred, y[batch])
                if sample_weight is not None:
                    w = sample_weight[batch][:, None]
                    value = float((w * (pred - y[batch]) ** 2).mean())
                    grad = grad * w
                self.net.backward(grad)
                opt.step(self.net.parameters(), self.net.gradients())
                epoch_loss += value
                n_batches += 1
            log.train_losses.append(epoch_loss / max(n_batches, 1))

            if val_x is not None:
                val_pred = self.net.forward(val_x, training=False)
                val_value, _ = loss_fn(val_pred, val_y)
                log.val_losses.append(val_value)
                if val_value < best_val - 1e-9:
                    best_val = val_value
                    best_params = [p.copy() for p in self.net.parameters()]
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= patience:
                        log.stopped_early = True
                        break
            if verbose and epoch % 10 == 0:
                print(f"epoch {epoch}: loss={log.train_losses[-1]:.6f}")

        if best_params is not None:
            for p, best in zip(self.net.parameters(), best_params):
                p[...] = best
        return log

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        out = self.net.forward(self._normalize(x), training=False)
        if self.out_dim == 1:
            out = out[:, 0]
        return out[0] if single else out

    # -- (de)serialization ---------------------------------------------------

    def get_weights(self) -> list[np.ndarray]:
        return [p.copy() for p in self.net.parameters()]

    def set_weights(self, weights: Iterable[np.ndarray]) -> None:
        params = self.net.parameters()
        weights = list(weights)
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} weight arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w
