"""K-means clustering (k-means++ init), used by Eraser's plan clustering."""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans"]


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Deterministic for a fixed seed.  Empty clusters are re-seeded from the
    point farthest from its assigned centroid.
    """

    def __init__(self, n_clusters: int, max_iter: int = 100, seed: int = 0) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.max_iter = max_iter
        self.seed = seed
        self.centroids_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = 0.0

    def _init_centroids(self, x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = x.shape[0]
        centroids = np.empty((self.n_clusters, x.shape[1]))
        centroids[0] = x[rng.integers(n)]
        closest = ((x - centroids[0]) ** 2).sum(axis=1)
        for k in range(1, self.n_clusters):
            total = closest.sum()
            if total <= 0:
                centroids[k] = x[rng.integers(n)]
                continue
            probs = closest / total
            centroids[k] = x[rng.choice(n, p=probs)]
            dist = ((x - centroids[k]) ** 2).sum(axis=1)
            closest = np.minimum(closest, dist)
        return centroids

    def fit(self, x: np.ndarray) -> "KMeans":
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[0] == 0:
            raise ValueError("x must be a non-empty 2-D array")
        k = min(self.n_clusters, x.shape[0])
        rng = np.random.default_rng(self.seed)
        centroids = self._init_centroids(x, rng)[:k]
        labels = np.zeros(x.shape[0], dtype=int)
        for _ in range(self.max_iter):
            dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            new_labels = dists.argmin(axis=1)
            for j in range(k):
                members = x[new_labels == j]
                if members.shape[0] == 0:
                    worst = dists[np.arange(x.shape[0]), new_labels].argmax()
                    centroids[j] = x[worst]
                    new_labels[worst] = j
                else:
                    centroids[j] = members.mean(axis=0)
            if (new_labels == labels).all():
                labels = new_labels
                break
            labels = new_labels
        self.centroids_ = centroids
        self.labels_ = labels
        dists = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        self.inertia_ = float(dists[np.arange(x.shape[0]), labels].sum())
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.centroids_ is None:
            raise RuntimeError("KMeans.predict called before fit")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        dists = ((x[:, None, :] - self.centroids_[None, :, :]) ** 2).sum(axis=2)
        return dists.argmin(axis=1)
