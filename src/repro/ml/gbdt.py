"""Gradient-boosted regression trees (XGBoost-style, exact greedy splits).

Used for the lightweight query-driven selectivity models of Dutt et al.
[9, 10] and as a general tabular regressor throughout the repo.  Squared
loss, depth-limited trees, shrinkage, optional feature/row subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """CART regression tree with exact greedy variance-reduction splits."""

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 5,
        min_gain: float = 1e-12,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.nodes: list[_Node] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x/y length mismatch")
        if x.shape[0] == 0:
            raise ValueError("cannot fit a tree on empty data")
        self.nodes = []
        self._build(x, y, np.arange(x.shape[0]), depth=0)
        return self

    def _best_split(
        self, x: np.ndarray, y: np.ndarray, idx: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Return (feature, threshold, gain) or None if no valid split."""
        n = idx.shape[0]
        if n < 2 * self.min_samples_leaf:
            return None
        y_sub = y[idx]
        total_sum = y_sub.sum()
        total_sq = (y_sub**2).sum()
        base_sse = total_sq - total_sum**2 / n
        best: tuple[int, float, float] | None = None
        for f in range(x.shape[1]):
            vals = x[idx, f]
            order = np.argsort(vals, kind="stable")
            v_sorted = vals[order]
            y_sorted = y_sub[order]
            csum = np.cumsum(y_sorted)
            csq = np.cumsum(y_sorted**2)
            # Candidate split positions: between distinct consecutive values,
            # respecting the min-samples-per-leaf constraint.
            k = np.arange(self.min_samples_leaf, n - self.min_samples_leaf + 1)
            if k.size == 0:
                continue
            valid = v_sorted[k - 1] < v_sorted[np.minimum(k, n - 1)]
            k = k[valid[: k.size]]
            if k.size == 0:
                continue
            left_sse = csq[k - 1] - csum[k - 1] ** 2 / k
            right_sum = total_sum - csum[k - 1]
            right_sq = total_sq - csq[k - 1]
            right_sse = right_sq - right_sum**2 / (n - k)
            gains = base_sse - left_sse - right_sse
            j = int(gains.argmax())
            if gains[j] > self.min_gain and (best is None or gains[j] > best[2]):
                thr = 0.5 * (v_sorted[k[j] - 1] + v_sorted[k[j]])
                best = (f, float(thr), float(gains[j]))
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, idx: np.ndarray, depth: int) -> int:
        node_id = len(self.nodes)
        self.nodes.append(_Node(value=float(y[idx].mean())))
        if depth >= self.max_depth:
            return node_id
        split = self._best_split(x, y, idx)
        if split is None:
            return node_id
        feature, threshold, _ = split
        go_left = x[idx, feature] <= threshold
        left_idx, right_idx = idx[go_left], idx[~go_left]
        if left_idx.size == 0 or right_idx.size == 0:
            return node_id
        node = self.nodes[node_id]
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x, y, left_idx, depth + 1)
        node.right = self._build(x, y, right_idx, depth + 1)
        return node_id

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(x.shape[0])
        for i in range(x.shape[0]):
            node = self.nodes[0]
            while not node.is_leaf:
                node = self.nodes[node.left if x[i, node.feature] <= node.threshold else node.right]
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Boosted ensemble of :class:`RegressionTree` with squared loss.

    Parameters mirror the usual GBDT knobs; with squared loss each stage fits
    the residuals of the running prediction.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int = 4,
        learning_rate: float = 0.1,
        min_samples_leaf: int = 5,
        subsample: float = 1.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.base_: float = 0.0
        self.trees_: list[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        rng = np.random.default_rng(self.seed)
        self.base_ = float(y.mean())
        self.trees_ = []
        pred = np.full(y.shape[0], self.base_)
        n = x.shape[0]
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                take = rng.random(n) < self.subsample
                if take.sum() < max(2 * self.min_samples_leaf, 2):
                    take = np.ones(n, dtype=bool)
            else:
                take = np.ones(n, dtype=bool)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(x[take], residual[take])
            update = tree.predict(x)
            pred += self.learning_rate * update
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.full(x.shape[0], self.base_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        return out

    def staged_predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions after each boosting stage, ``[n_estimators, n]``."""
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        out = np.full(x.shape[0], self.base_)
        stages = np.empty((len(self.trees_), x.shape[0]))
        for i, tree in enumerate(self.trees_):
            out = out + self.learning_rate * tree.predict(x)
            stages[i] = out
        return stages
