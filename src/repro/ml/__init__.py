"""Minimal-but-complete numpy ML toolkit used by every learned component.

The surveyed learned-query-optimizer literature uses small neural models
(MLPs, set convolutions, tree convolutions, masked autoregressive nets),
gradient-boosted trees and a few classic statistical models.  All of them are
small enough to train on CPU with plain numpy, which keeps this repository
free of GPU/framework dependencies while exercising the same algorithms.

Public surface:

- :class:`repro.ml.nn.MLP` and the layer/optimizer machinery in ``nn``
- :class:`repro.ml.treeconv.TreeConvNet` -- tree convolution over plan trees
- :class:`repro.ml.setconv.SetConvNet` -- MSCN-style multi-set convolution
- :class:`repro.ml.autoregressive.MaskedAutoregressiveNetwork` -- MADE-style
  masked network used by Naru-style estimators
- :class:`repro.ml.gbdt.GradientBoostedTrees` -- regression GBDT
- :class:`repro.ml.cluster.KMeans` -- k-means (used by Eraser plan clustering)
- :func:`repro.ml.chowliu.chow_liu_tree` -- Chow-Liu dependency tree
"""

from repro.ml.nn import (
    Adam,
    Dense,
    Dropout,
    MLP,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    mse_loss,
    q_error_loss,
)
from repro.ml.gbdt import GradientBoostedTrees
from repro.ml.cluster import KMeans
from repro.ml.treeconv import TreeConvNet, PlanTreeBatch
from repro.ml.setconv import SetConvNet
from repro.ml.autoregressive import MaskedAutoregressiveNetwork
from repro.ml.chowliu import chow_liu_tree

__all__ = [
    "Adam",
    "Dense",
    "Dropout",
    "MLP",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "mse_loss",
    "q_error_loss",
    "GradientBoostedTrees",
    "KMeans",
    "TreeConvNet",
    "PlanTreeBatch",
    "SetConvNet",
    "MaskedAutoregressiveNetwork",
    "chow_liu_tree",
]
