"""Masked autoregressive network (MADE) over discrete columns.

This is the model underlying the Naru [71] / NeuroCard [70] family of
data-driven cardinality estimators: the joint distribution over ``m``
discrete columns is factorized as ``P(x) = prod_i P(x_i | x_<i>)`` and a
single masked network computes all ``m`` conditionals in one forward pass.

Columns are fed as concatenated one-hot vectors; output block ``i`` holds the
logits of column ``i`` conditioned on columns ``< i``.  The autoregressive
property is enforced with MADE-style binary masks on the dense layers:

- an input unit belonging to column ``i`` has degree ``i``;
- hidden units get degrees cycling over ``0 .. m-2``;
- connection input->hidden allowed iff ``deg_hidden >= deg_input``;
- connection hidden->output(col i) allowed iff ``deg_hidden < i``
  (strict, so block ``i`` never sees column ``i`` or later).

Training maximizes the exact data log-likelihood (sum of per-column
cross-entropies).  Inference for range queries is done by the caller via
progressive sampling (see ``repro.cardest.datadriven``).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.ml.nn import Adam

__all__ = ["MaskedAutoregressiveNetwork"]


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class MaskedAutoregressiveNetwork:
    """MADE over discrete columns with per-column one-hot inputs.

    Parameters
    ----------
    domain_sizes:
        Number of distinct (binned) values per column, in column order.
        The factorization order is exactly this column order.
    hidden:
        Hidden layer widths.
    seed:
        Deterministic init/batching seed.
    """

    def __init__(
        self,
        domain_sizes: Sequence[int],
        hidden: Sequence[int] = (128, 128),
        *,
        seed: int = 0,
    ) -> None:
        self.domain_sizes = [int(k) for k in domain_sizes]
        if any(k < 1 for k in self.domain_sizes):
            raise ValueError("every column needs at least one distinct value")
        self.n_cols = len(self.domain_sizes)
        if self.n_cols < 1:
            raise ValueError("need at least one column")
        self.in_dim = sum(self.domain_sizes)
        self.out_dim = self.in_dim  # one logit per (column, value)
        rng = np.random.default_rng(seed)

        # Degree assignment.
        in_degrees = np.concatenate(
            [np.full(k, i) for i, k in enumerate(self.domain_sizes)]
        )
        out_degrees = in_degrees.copy()

        # Column offsets for slicing one-hot blocks.
        self.offsets = np.zeros(self.n_cols + 1, dtype=int)
        np.cumsum(self.domain_sizes, out=self.offsets[1:])

        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        self.masks: list[np.ndarray] = []
        prev_deg = in_degrees
        prev_dim = self.in_dim
        max_hidden_deg = max(self.n_cols - 2, 0)
        for width in hidden:
            h_deg = np.arange(width) % (max_hidden_deg + 1)
            mask = (h_deg[None, :] >= prev_deg[:, None]).astype(float)
            scale = math.sqrt(2.0 / prev_dim)
            self.weights.append(rng.normal(0.0, scale, size=(prev_dim, width)))
            self.biases.append(np.zeros(width))
            self.masks.append(mask)
            prev_deg = h_deg
            prev_dim = width
        # Output layer: strict inequality so column i sees only columns < i.
        out_mask = (out_degrees[None, :] > prev_deg[:, None]).astype(float)
        scale = math.sqrt(1.0 / prev_dim)
        self.weights.append(rng.normal(0.0, scale, size=(prev_dim, self.out_dim)))
        self.biases.append(np.zeros(self.out_dim))
        self.masks.append(out_mask)
        self._grads_w = [np.zeros_like(w) for w in self.weights]
        self._grads_b = [np.zeros_like(b) for b in self.biases]
        self._rng = rng

    # -- encoding -----------------------------------------------------------------

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """One-hot encode integer rows ``[n, n_cols]`` -> ``[n, in_dim]``."""
        rows = np.asarray(rows, dtype=int)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.shape[1] != self.n_cols:
            raise ValueError(f"expected {self.n_cols} columns, got {rows.shape[1]}")
        n = rows.shape[0]
        onehot = np.zeros((n, self.in_dim))
        for i, k in enumerate(self.domain_sizes):
            vals = rows[:, i]
            if (vals < 0).any() or (vals >= k).any():
                raise ValueError(f"column {i} has values outside [0, {k})")
            onehot[np.arange(n), self.offsets[i] + vals] = 1.0
        return onehot

    # -- forward / logits --------------------------------------------------------

    def forward(self, onehot: np.ndarray) -> np.ndarray:
        """Return raw logits ``[n, out_dim]`` (per-column blocks)."""
        self._acts = [onehot]
        self._relu_masks = []
        x = onehot
        last = len(self.weights) - 1
        for i, (w, b, m) in enumerate(zip(self.weights, self.biases, self.masks)):
            x = x @ (w * m) + b
            if i < last:
                mask = x > 0
                self._relu_masks.append(mask)
                x = x * mask
            self._acts.append(x)
        return x

    def column_logits(self, logits: np.ndarray, col: int) -> np.ndarray:
        return logits[:, self.offsets[col] : self.offsets[col + 1]]

    def conditional_distribution(self, rows: np.ndarray, col: int) -> np.ndarray:
        """``P(x_col | x_<col>)`` for each row; later columns are ignored.

        ``rows`` may contain arbitrary values in columns ``>= col`` (they
        cannot influence block ``col`` by the masking construction); callers
        typically pass a partially sampled prefix padded with zeros.
        """
        logits = self.forward(self.encode(rows))
        return _softmax(self.column_logits(logits, col))

    def log_prob(self, rows: np.ndarray) -> np.ndarray:
        """Exact log P(row) for each integer row, ``[n]``."""
        rows = np.asarray(rows, dtype=int)
        if rows.ndim == 1:
            rows = rows[None, :]
        logits = self.forward(self.encode(rows))
        n = rows.shape[0]
        total = np.zeros(n)
        for i in range(self.n_cols):
            block = _log_softmax(self.column_logits(logits, i))
            total += block[np.arange(n), rows[:, i]]
        return total

    # -- training -------------------------------------------------------------------

    def _loss_and_backward(self, rows: np.ndarray) -> float:
        onehot = self.encode(rows)
        logits = self.forward(onehot)
        n = rows.shape[0]
        grad = np.zeros_like(logits)
        loss = 0.0
        for i in range(self.n_cols):
            block = self.column_logits(logits, i)
            probs = _softmax(block)
            lsm = _log_softmax(block)
            loss -= lsm[np.arange(n), rows[:, i]].sum()
            g = probs.copy()
            g[np.arange(n), rows[:, i]] -= 1.0
            grad[:, self.offsets[i] : self.offsets[i + 1]] = g / n
        loss /= n

        # Backprop through masked dense stack.
        last = len(self.weights) - 1
        g = grad
        for i in range(last, -1, -1):
            x_in = self._acts[i]
            w, m = self.weights[i], self.masks[i]
            self._grads_w[i][...] = (x_in.T @ g) * m
            self._grads_b[i][...] = g.sum(axis=0)
            if i > 0:
                g = g @ (w * m).T
                g = g * self._relu_masks[i - 1]
        return loss

    def fit(
        self,
        rows: np.ndarray,
        *,
        epochs: int = 20,
        batch_size: int = 256,
        lr: float = 8e-3,
        verbose: bool = False,
    ) -> list[float]:
        """Maximum-likelihood training on integer-coded rows."""
        rows = np.asarray(rows, dtype=int)
        if rows.ndim != 2 or rows.shape[1] != self.n_cols:
            raise ValueError(f"rows must be [n, {self.n_cols}]")
        if rows.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        opt = Adam(lr=lr)
        params = self.weights + self.biases
        losses: list[float] = []
        n = rows.shape[0]
        for epoch in range(epochs):
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                batch = rows[order[start : start + batch_size]]
                total += self._loss_and_backward(batch)
                grads = self._grads_w + self._grads_b
                opt.step(params, grads)
                batches += 1
            losses.append(total / max(batches, 1))
            if verbose:
                print(f"made epoch {epoch}: nll={losses[-1]:.4f}")
        return losses

    # -- sampling ------------------------------------------------------------------

    def sample(self, n: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``n`` rows from the learned joint distribution."""
        rng = rng if rng is not None else self._rng
        rows = np.zeros((n, self.n_cols), dtype=int)
        for col in range(self.n_cols):
            probs = self.conditional_distribution(rows, col)
            cdf = probs.cumsum(axis=1)
            u = rng.random((n, 1))
            rows[:, col] = (u > cdf).sum(axis=1)
        return rows
