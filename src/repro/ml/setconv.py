"""Multi-set convolutional network (MSCN, Kipf et al. [23]).

MSCN featurizes a query as three *sets* -- table samples, join conditions and
predicates -- runs a small shared MLP over every element of each set,
average-pools each set into a fixed vector, concatenates the pooled vectors
and maps them through a final MLP to a (sigmoid-squashed) cardinality.

This implementation generalizes the idea to any number of named set modules,
which also lets the Robust-MSCN variant [45] reuse it with query-masking
applied at featurization time.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.ml.nn import Adam, mse_loss

__all__ = ["SetConvNet"]


class _SetModule:
    """Per-element MLP + masked average (or max) pooling for one set kind."""

    def __init__(
        self,
        item_dim: int,
        hidden: int,
        rng: np.random.Generator,
        pooling: str = "avg",
    ) -> None:
        if pooling not in ("avg", "max"):
            raise ValueError(f"unknown pooling {pooling!r}")
        self.pooling = pooling
        self.item_dim = item_dim
        self.hidden = hidden
        s1 = math.sqrt(2.0 / item_dim)
        s2 = math.sqrt(2.0 / hidden)
        self.w1 = rng.normal(0.0, s1, size=(item_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0.0, s2, size=(hidden, hidden))
        self.b2 = np.zeros(hidden)
        self.grads = [np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)]

    def forward(
        self, padded: np.ndarray, mask: np.ndarray, *, train: bool = True
    ) -> np.ndarray:
        # padded: [B, S, item_dim]; mask: [B, S] with 1 for real elements.
        # With train=False the intermediates needed by backward() are not
        # stored and the ReLUs run in place -- same values, less allocation.
        b, s, d = padded.shape
        flat = padded.reshape(b * s, d)
        h1 = flat @ self.w1 + self.b1
        if train:
            self._padded, self._mask = padded, mask
            self._m1 = h1 > 0
            h1 = h1 * self._m1
            self._h1 = h1
        else:
            np.maximum(h1, 0.0, out=h1)
        h2 = h1 @ self.w2 + self.b2
        if train:
            self._m2 = h2 > 0
            h2 = h2 * self._m2
        else:
            np.maximum(h2, 0.0, out=h2)
        h2 = h2.reshape(b, s, self.hidden)
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        if train:
            self._counts = counts
        if self.pooling == "max":
            # Mask out padding with -inf so it never wins the max; an
            # all-empty set pools to zero.
            masked = np.where(mask[:, :, None] > 0, h2, -np.inf)
            argmax = masked.argmax(axis=1)  # [b, hidden]
            pooled = np.take_along_axis(h2, argmax[:, None, :], axis=1)[:, 0, :]
            empty = mask.sum(axis=1) == 0
            pooled[empty] = 0.0
            if train:
                self._argmax = argmax
                self._empty = empty
            return pooled
        return (h2 * mask[:, :, None]).sum(axis=1) / counts

    def backward(self, grad_pool: np.ndarray) -> None:
        b, s, d = self._padded.shape
        if self.pooling == "max":
            g3 = np.zeros((b, s, self.hidden))
            rows = np.arange(b)[:, None]
            cols = np.arange(self.hidden)[None, :]
            grad_eff = np.where(self._empty[:, None], 0.0, grad_pool)
            g3[rows, self._argmax, cols] = grad_eff
            g = g3.reshape(b * s, self.hidden) * self._m2
        else:
            g = (
                grad_pool[:, None, :] / self._counts[:, :, None]
            ) * self._mask[:, :, None]
            g = g.reshape(b * s, self.hidden) * self._m2
        self.grads[2][...] = self._h1.T @ g
        self.grads[3][...] = g.sum(axis=0)
        g = (g @ self.w2.T) * self._m1
        flat = self._padded.reshape(b * s, d)
        self.grads[0][...] = flat.T @ g
        self.grads[1][...] = g.sum(axis=0)

    def parameters(self) -> list[np.ndarray]:
        return [self.w1, self.b1, self.w2, self.b2]


class SetConvNet:
    """MSCN-style model over named multi-sets of feature vectors.

    Parameters
    ----------
    modules:
        Mapping from set name (e.g. ``"tables"``, ``"joins"``, ``"preds"``)
        to the per-element feature dimension of that set.
    hidden:
        Width of the per-element MLPs and pooled representations.
    head_hidden:
        Width of the final MLP hidden layer.

    The model regresses a scalar in ``[0, 1]`` through a sigmoid; callers
    (cardinality estimators) are responsible for scaling targets into that
    range (typically normalized log-cardinality).
    """

    def __init__(
        self,
        modules: Mapping[str, int],
        *,
        hidden: int = 64,
        head_hidden: int = 64,
        pooling: str = "avg",
        seed: int = 0,
    ) -> None:
        if not modules:
            raise ValueError("SetConvNet needs at least one set module")
        rng = np.random.default_rng(seed)
        self.module_names = list(modules)
        self.modules = {
            name: _SetModule(dim, hidden, rng, pooling=pooling)
            for name, dim in modules.items()
        }
        in_dim = hidden * len(self.modules)
        self.w1 = rng.normal(0.0, math.sqrt(2.0 / in_dim), size=(in_dim, head_hidden))
        self.b1 = np.zeros(head_hidden)
        self.w2 = rng.normal(0.0, math.sqrt(1.0 / head_hidden), size=(head_hidden, 1))
        self.b2 = np.zeros(1)
        self._head_grads = [
            np.zeros_like(p) for p in (self.w1, self.b1, self.w2, self.b2)
        ]

    # -- batching ---------------------------------------------------------------

    @staticmethod
    def _pad(sets: Sequence[np.ndarray], item_dim: int) -> tuple[np.ndarray, np.ndarray]:
        b = len(sets)
        s_max = max((arr.shape[0] for arr in sets), default=0)
        s_max = max(s_max, 1)
        padded = np.zeros((b, s_max, item_dim))
        mask = np.zeros((b, s_max))
        for i, arr in enumerate(sets):
            arr = np.asarray(arr, dtype=float)
            if arr.size == 0:
                continue
            if arr.ndim != 2 or arr.shape[1] != item_dim:
                raise ValueError(
                    f"set element dim {arr.shape} incompatible with {item_dim}"
                )
            padded[i, : arr.shape[0]] = arr
            mask[i, : arr.shape[0]] = 1.0
        return padded, mask

    # -- forward / backward -------------------------------------------------------

    def forward(self, batch: Mapping[str, Sequence[np.ndarray]]) -> np.ndarray:
        padded_batch = {
            name: self._pad(batch[name], self.modules[name].item_dim)
            for name in self.module_names
        }
        return self.forward_padded(padded_batch)

    def forward_padded(
        self,
        batch: Mapping[str, tuple[np.ndarray, np.ndarray]],
        *,
        train: bool = True,
    ) -> np.ndarray:
        """Forward pass over already-padded sets: ``{name: (padded, mask)}``.

        The fast path for batched inference -- featurizers that build padded
        arrays directly (``MSCNFeaturizer.featurize_workload``) skip the
        per-query set lists entirely.  Masked pooling makes the result
        independent of the padded length, so any padding >= the longest set
        gives the same output as :meth:`forward`.  ``train=False`` skips
        storing the backward-pass intermediates (inference only).
        """
        pooled = []
        for name in self.module_names:
            padded, mask = batch[name]
            pooled.append(self.modules[name].forward(padded, mask, train=train))
        concat = np.concatenate(pooled, axis=1)
        h = concat @ self.w1 + self.b1
        if train:
            self._concat = concat
            self._hm = h > 0
            h = h * self._hm
            self._h = h
        else:
            np.maximum(h, 0.0, out=h)
        out = h @ self.w2 + self.b2
        sig = 1.0 / (1.0 + np.exp(-np.clip(out, -60, 60)))
        if train:
            self._sig = sig
        return sig

    def _backward(self, grad: np.ndarray) -> None:
        grad = grad * self._sig * (1.0 - self._sig)
        self._head_grads[2][...] = self._h.T @ grad
        self._head_grads[3][...] = grad.sum(axis=0)
        g = (grad @ self.w2.T) * self._hm
        self._head_grads[0][...] = self._concat.T @ g
        self._head_grads[1][...] = g.sum(axis=0)
        g = g @ self.w1.T
        hidden = self.modules[self.module_names[0]].hidden
        for i, name in enumerate(self.module_names):
            self.modules[name].backward(g[:, i * hidden : (i + 1) * hidden])

    def parameters(self) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for name in self.module_names:
            params.extend(self.modules[name].parameters())
        params.extend([self.w1, self.b1, self.w2, self.b2])
        return params

    def gradients(self) -> list[np.ndarray]:
        grads: list[np.ndarray] = []
        for name in self.module_names:
            grads.extend(self.modules[name].grads)
        grads.extend(self._head_grads)
        return grads

    # -- training ---------------------------------------------------------------

    def fit(
        self,
        samples: Sequence[Mapping[str, np.ndarray]],
        y: np.ndarray,
        *,
        epochs: int = 80,
        batch_size: int = 64,
        lr: float = 1e-3,
        seed: int = 0,
        verbose: bool = False,
    ) -> list[float]:
        """Train on per-query set dicts with targets ``y`` in ``[0, 1]``."""
        y = np.asarray(y, dtype=float)
        if y.ndim == 1:
            y = y[:, None]
        if len(samples) != y.shape[0]:
            raise ValueError("samples and targets length mismatch")
        if len(samples) == 0:
            raise ValueError("cannot fit on an empty workload")
        rng = np.random.default_rng(seed)
        opt = Adam(lr=lr)
        losses: list[float] = []
        n = len(samples)
        for epoch in range(epochs):
            order = rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = {
                    name: [samples[i][name] for i in idx] for name in self.module_names
                }
                pred = self.forward(batch)
                value, grad = mse_loss(pred, y[idx])
                self._backward(grad)
                opt.step(self.parameters(), self.gradients())
                total += value
                batches += 1
            losses.append(total / max(batches, 1))
            if verbose and epoch % 10 == 0:
                print(f"setconv epoch {epoch}: loss={losses[-1]:.6f}")
        return losses

    def predict(self, samples: Sequence[Mapping[str, np.ndarray]]) -> np.ndarray:
        if not samples:
            return np.zeros(0)
        batch = {name: [s[name] for s in samples] for name in self.module_names}
        return self.forward(batch)[:, 0]

    def predict_padded(
        self, batch: Mapping[str, tuple[np.ndarray, np.ndarray]]
    ) -> np.ndarray:
        """Predictions from pre-padded sets (see :meth:`forward_padded`)."""
        return self.forward_padded(batch, train=False)[:, 0]
