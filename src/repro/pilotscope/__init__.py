"""PilotScope middleware (paper §3, [80]).

An AI4DB middleware decoupling ML drivers from database internals:

- :class:`repro.pilotscope.console.PilotScopeConsole` -- operates the whole
  system: registers drivers, starts/stops them, and executes user SQL
  transparently (the user never sees which driver served a query);
- :class:`repro.pilotscope.driver.Driver` -- the programming model: a task
  overrides ``init()`` (preparation + injection type) and ``algo()`` (the
  AI4DB algorithm consulting ML models and interacting with the database);
- :class:`repro.pilotscope.interactor.DBInteractor` /
  :class:`repro.pilotscope.interactor.PilotSession` -- the unified
  interface between drivers and databases, exposing *push* operators
  (enforce actions: inject cardinalities, set hints, scale knobs) and
  *pull* operators (fetch data: sub-queries, plans, execution results);
- :class:`repro.pilotscope.postgres_sim.SimulatedPostgreSQL` -- the
  per-database implementation of the interactor (our engine's equivalent
  of the lightweight PostgreSQL patches);
- :mod:`repro.pilotscope.drivers` -- the two representative applications
  demonstrated in the tutorial: batch cardinality injection for any
  learned estimator, plus Bao and Lero drivers assembled purely from
  push/pull operators.
"""

from repro.pilotscope.interactor import DBInteractor, PilotSession
from repro.pilotscope.postgres_sim import SimulatedPostgreSQL
from repro.pilotscope.driver import Driver, DriverConfig
from repro.pilotscope.console import PilotScopeConsole
from repro.pilotscope.drivers import (
    BaoDriver,
    CardinalityInjectionDriver,
    LeroDriver,
)

__all__ = [
    "DBInteractor",
    "PilotSession",
    "SimulatedPostgreSQL",
    "Driver",
    "DriverConfig",
    "PilotScopeConsole",
    "CardinalityInjectionDriver",
    "BaoDriver",
    "LeroDriver",
]
