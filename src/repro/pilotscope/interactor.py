"""The DB interactor: PilotScope's unified driver <-> database interface.

The interactor "shields the underlying details of different databases and
serves as a unified bridge for drivers" (§3.1).  It abstracts two operator
families on a per-session basis:

- **push** operators enforce actions on the database for the session:
  inject sub-query cardinalities, set an operator hint set, scale the
  estimator, change configuration knobs;
- **pull** operators fetch data: the sub-queries the planner will cost,
  the plan the optimizer would pick, execution results, statistics.

Every concrete database (here: the simulated PostgreSQL) implements
:class:`DBInteractor` by returning its own :class:`PilotSession`
subclass; drivers only ever touch the abstract surface, which is what
lets one driver steer any database.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from itertools import combinations

from repro.core.errors import SessionClosedError
from repro.engine.plans import Plan
from repro.engine.simulator import ExecutionResult
from repro.optimizer.hints import HintSet
from repro.sql.query import Query

__all__ = ["DBInteractor", "PilotSession", "ExecutionOutcome"]


@dataclass(frozen=True)
class ExecutionOutcome:
    """What a session's execute returns to the database user."""

    cardinality: int
    latency_ms: float
    plan: Plan


class PilotSession(abc.ABC):
    """One interaction session (a dedicated database connection).

    Push state is session-scoped and cleared on :meth:`close`, matching
    PilotScope's session semantics (each ML<->DB interaction opens a fresh
    connection whose injected state cannot leak into other users' queries).
    """

    def __init__(self) -> None:
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise SessionClosedError("session is closed")

    # -- push operators ---------------------------------------------------------

    @abc.abstractmethod
    def push_cardinalities(self, cards: dict[str, float]) -> None:
        """Inject sub-query cardinalities (key: canonical sub-query SQL)."""

    @abc.abstractmethod
    def push_hint_set(self, hints: HintSet) -> None:
        """Force an operator hint set for subsequent planning."""

    @abc.abstractmethod
    def push_cardinality_scale(self, factor: float) -> None:
        """Scale the native estimator's outputs (Lero's knob)."""

    @abc.abstractmethod
    def push_config(self, key: str, value) -> None:
        """Set a configuration knob (e.g. planning algorithm)."""

    # -- pull operators -----------------------------------------------------------

    @abc.abstractmethod
    def pull_subqueries(self, query: Query) -> list[Query]:
        """All connected sub-queries the planner will request cardinalities
        for (single tables and connected joins)."""

    @abc.abstractmethod
    def pull_plan(self, query: Query) -> Plan:
        """The plan the optimizer picks under the session's pushed state."""

    @abc.abstractmethod
    def pull_execution(self, plan: Plan) -> ExecutionResult:
        """Execute a specific plan and return full execution feedback."""

    @abc.abstractmethod
    def pull_native_estimate(self, query: Query) -> float:
        """The native estimator's cardinality estimate (pre-injection)."""

    # -- lifecycle -------------------------------------------------------------------

    @abc.abstractmethod
    def reset_pushes(self) -> None:
        """Drop all pushed state (between queries of one session)."""

    def close(self) -> None:
        self.reset_pushes()
        self.closed = True

    def __enter__(self) -> "PilotSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DBInteractor(abc.ABC):
    """Factory for sessions against one concrete database."""

    @abc.abstractmethod
    def open_session(self) -> PilotSession:
        ...

    @abc.abstractmethod
    def execute_default(self, query: Query) -> ExecutionOutcome:
        """Run a query entirely natively (no driver involvement)."""


def enumerate_subqueries(query: Query) -> list[Query]:
    """Connected sub-queries of a query, smallest first.

    This is what the cardinality-injection interface iterates: every
    subset the DP enumerator can ask about.
    """
    out: list[Query] = []
    tables = list(query.tables)
    for size in range(1, len(tables) + 1):
        for combo in combinations(tables, size):
            sub = query.subquery(combo)
            if sub.is_connected():
                out.append(sub)
    return out
