"""The driver programming model (paper §3.2).

    "For each new driver, we only need to override: 1) an init() function
    to make some preparations and specify its injection type, and 2) an
    algo() function to describe the AI4DB algorithm."

A :class:`Driver` packages one AI4DB task.  The console calls
:meth:`Driver.init` once when the driver starts, then :meth:`Driver.algo`
for every user query routed to it.  Drivers may implement
``collect_training_data`` / ``train`` for the workflow's data-collection
and training phases, and ``background_update`` for keeping models fresh.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.core.errors import DriverError
from repro.pilotscope.interactor import DBInteractor, ExecutionOutcome
from repro.sql.query import Query

__all__ = ["DriverConfig", "Driver"]


@dataclass
class DriverConfig:
    """Free-form driver configuration passed at init time."""

    options: dict[str, object] = field(default_factory=dict)

    def get(self, key: str, default=None):
        return self.options.get(key, default)


class Driver(abc.ABC):
    """Base class for AI4DB drivers.

    ``injection_type`` declares which database component the driver
    replaces: ``"cardinality"`` (sub-query cardinality injection) or
    ``"query_optimizer"`` (end-to-end plan selection).
    """

    injection_type: str = "query_optimizer"
    name: str = "driver"

    def __init__(self) -> None:
        self.interactor: DBInteractor | None = None
        self.config = DriverConfig()
        self.started = False

    # -- lifecycle ---------------------------------------------------------------

    def init(self, interactor: DBInteractor, config: DriverConfig | None = None) -> None:
        """Prepare the driver: bind the interactor, validate config."""
        self.interactor = interactor
        if config is not None:
            self.config = config
        self._prepare()
        self.started = True

    def _prepare(self) -> None:
        """Subclass hook for init-time preparation (default: nothing)."""

    def _require_started(self) -> DBInteractor:
        if not self.started or self.interactor is None:
            raise DriverError(
                f"driver {self.name!r} used before init() -- start it via the console"
            )
        return self.interactor

    # -- the algorithm -----------------------------------------------------------------

    @abc.abstractmethod
    def algo(self, query: Query) -> ExecutionOutcome:
        """Serve one user query, interacting via push/pull operators."""

    # -- optional workflow phases ----------------------------------------------------

    def collect_training_data(self, queries: list[Query]) -> None:
        """Data-collection phase (default: no-op)."""

    def train(self) -> None:
        """Model-training phase (default: no-op)."""

    def background_update(self) -> None:
        """Periodic background model refresh (default: no-op)."""
