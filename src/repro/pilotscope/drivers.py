"""The representative drivers the tutorial demonstrates (§3.2).

- :class:`CardinalityInjectionDriver`: deploys *any* learned cardinality
  estimator by pushing all sub-query cardinalities in one batch before
  planning -- "the same driver could support any cardinality estimation
  method";
- :class:`BaoDriver` / :class:`LeroDriver`: the two end-to-end optimizer
  drivers, assembled purely from push/pull operators: Bao pushes hint
  sets, Lero pushes cardinality scales, both pull the resulting candidate
  plans, select with their risk model, execute, and feed latencies back.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import sanitize_estimate
from repro.core.framework import CandidatePlan
from repro.costmodel.features import PlanFeaturizer
from repro.e2e.risk_models import PairwisePlanComparator, TreeConvLatencyModel
from repro.optimizer.hints import HintSet
from repro.pilotscope.driver import Driver
from repro.pilotscope.interactor import ExecutionOutcome
from repro.sql.query import Query

__all__ = ["CardinalityInjectionDriver", "BaoDriver", "LeroDriver"]


class CardinalityInjectionDriver(Driver):
    """Replace the cardinality estimator via batch injection."""

    injection_type = "cardinality"
    name = "cardinality_injection"

    def __init__(self, estimator) -> None:
        super().__init__()
        if not hasattr(estimator, "estimate"):
            raise TypeError("estimator must expose .estimate(query)")
        self.estimator = estimator
        self._collected: list[tuple[Query, float]] = []

    def algo(self, query: Query) -> ExecutionOutcome:
        interactor = self._require_started()
        with interactor.open_session() as session:
            subqueries = session.pull_subqueries(query)
            cards = {
                sub.to_sql(): sanitize_estimate(self.estimator.estimate(sub))
                for sub in subqueries
            }
            session.push_cardinalities(cards)
            plan = session.pull_plan(query)
            result = session.pull_execution(plan)
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=plan,
        )

    # -- workflow phases --------------------------------------------------------------

    def collect_training_data(self, queries: list[Query]) -> None:
        """Execute the workload natively, recording true cardinalities."""
        interactor = self._require_started()
        for q in queries:
            outcome = interactor.execute_default(q)
            self._collected.append((q, float(outcome.cardinality)))

    def train(self) -> None:
        if not self._collected:
            return
        if hasattr(self.estimator, "fit"):
            queries = [q for q, _ in self._collected]
            cards = np.array([c for _, c in self._collected])
            self.estimator.fit(queries, cards)

    def background_update(self) -> None:
        """Refresh data-driven models against the current data."""
        if hasattr(self.estimator, "refresh"):
            self.estimator.refresh()


class _SteeringDriverBase(Driver):
    """Shared plumbing for the Bao and Lero drivers."""

    injection_type = "query_optimizer"

    def __init__(self, retrain_every: int = 25, seed: int = 0) -> None:
        super().__init__()
        self.retrain_every = retrain_every
        self.seed = seed
        self._since_retrain = 0
        self.risk_model = None  # set in _prepare

    def _prepare(self) -> None:
        # Featurization metadata (schema, statistics) is catalog
        # information pulled from the attached database.
        host = self.interactor
        featurizer = PlanFeaturizer(host.db, host.optimizer.estimator)  # type: ignore[attr-defined]
        self.risk_model = self._build_risk_model(featurizer)

    def _build_risk_model(self, featurizer: PlanFeaturizer):
        raise NotImplementedError

    def _candidates(self, session, query: Query) -> list[CandidatePlan]:
        raise NotImplementedError

    def algo(self, query: Query) -> ExecutionOutcome:
        interactor = self._require_started()
        with interactor.open_session() as session:
            candidates = self._candidates(session, query)
            scores = self.risk_model.scores(candidates)
            best = candidates[int(np.argmin(scores))]
            result = session.pull_execution(best.plan)
        self.risk_model.observe(best, result.latency_ms)
        self._since_retrain += 1
        if self._since_retrain >= self.retrain_every:
            self._since_retrain = 0
            self.risk_model.retrain()
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=best.plan,
        )

    def background_update(self) -> None:
        self.risk_model.retrain()


class BaoDriver(_SteeringDriverBase):
    """Bao through PilotScope: push hint sets, pull candidate plans."""

    name = "bao_driver"

    def __init__(
        self,
        arms: list[HintSet] | None = None,
        retrain_every: int = 25,
        seed: int = 0,
    ) -> None:
        super().__init__(retrain_every=retrain_every, seed=seed)
        self.arms = arms if arms is not None else HintSet.bao_arms()

    def _build_risk_model(self, featurizer: PlanFeaturizer):
        return TreeConvLatencyModel(featurizer, thompson=True, seed=self.seed)

    def _candidates(self, session, query: Query) -> list[CandidatePlan]:
        out, seen = [], set()
        for i, arm in enumerate(self.arms):
            session.reset_pushes()
            session.push_hint_set(arm)
            plan = session.pull_plan(query)
            sig = plan.signature()
            if sig in seen:
                continue
            seen.add(sig)
            out.append(
                CandidatePlan(plan=plan, source="default" if i == 0 else arm.name())
            )
        return out


class LeroDriver(_SteeringDriverBase):
    """Lero through PilotScope: push cardinality scales, pull plans."""

    name = "lero_driver"

    def __init__(
        self,
        factors: tuple[float, ...] = (1.0, 0.01, 0.1, 10.0, 100.0),
        retrain_every: int = 25,
        seed: int = 0,
    ) -> None:
        super().__init__(retrain_every=retrain_every, seed=seed)
        if factors[0] != 1.0:
            raise ValueError("first factor must be 1.0 (the default plan)")
        self.factors = factors

    def _build_risk_model(self, featurizer: PlanFeaturizer):
        return PairwisePlanComparator(featurizer, seed=self.seed)

    def _candidates(self, session, query: Query) -> list[CandidatePlan]:
        out, seen = [], set()
        for f in self.factors:
            session.reset_pushes()
            if f != 1.0:
                session.push_cardinality_scale(f)
            plan = session.pull_plan(query)
            sig = plan.signature()
            if sig in seen:
                continue
            seen.add(sig)
            out.append(
                CandidatePlan(
                    plan=plan, source="default" if f == 1.0 else f"scale={f:g}"
                )
            )
        return out

    def collect_training_data(self, queries: list[Query]) -> None:
        """Lero's pair-collection phase: execute candidates per query."""
        interactor = self._require_started()
        with interactor.open_session() as session:
            for query in queries:
                candidates = self._candidates(session, query)[:3]
                if len(candidates) < 2:
                    continue
                for cand in candidates:
                    result = session.pull_execution(cand.plan)
                    self.risk_model.observe(cand, result.latency_ms)

    def train(self) -> None:
        self.risk_model.retrain()
