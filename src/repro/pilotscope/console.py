"""The PilotScope console: the single entry point database users touch.

The console registers drivers, starts/stops them, and executes SQL.  From
the user's perspective nothing changes -- ``console.execute(sql)`` returns
the query result either way; whether an AI4DB driver served the query is
fully transparent (§3: "the execution of any AI4DB algorithm is totally
transparent to the database user").

**Resilient dispatch.**  A driver is a learned component and may fail:
raise, hang (modelled as a virtual-latency budget blow-out), or lose its
connection.  The console survives all of it: :class:`repro.core.errors.
DriverError` / ``EstimationError`` from ``driver.algo`` are retried up to
``retry_policy.max_attempts`` with deterministic exponential backoff
(virtual ms, accumulated in ``retry_backoff_total_ms``), and when retries
are exhausted -- or the driver's reported latency exceeds
``call_timeout_ms`` -- the query is re-served natively, so a broken driver
degrades service quality but never availability.  Unexpected exception
types still propagate: the resilience path is for failures, not for
masking bugs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import ConfigError, DriverError, EstimationError
from repro.core.interfaces import estimator_cache_tag
from repro.faults.resilience import RetryPolicy
from repro.pilotscope.driver import DriverConfig
from repro.pilotscope.interactor import DBInteractor, ExecutionOutcome
from repro.sql.parser import parse_query
from repro.sql.query import Query

__all__ = ["PilotScopeConsole", "QueryLogEntry"]

#: driver failures the dispatch loop treats as transient/retryable
_RETRYABLE = (DriverError, EstimationError)


@dataclass(frozen=True)
class QueryLogEntry:
    """One executed user query, for audit / experiments."""

    sql: str
    served_by: str  # driver name or "native"
    cardinality: int
    latency_ms: float


@dataclass
class _DriverSlot:
    driver: object
    active: bool = False


class PilotScopeConsole:
    """Operates drivers and routes user queries."""

    def __init__(
        self,
        interactor: DBInteractor,
        *,
        max_log_entries: int | None = 10_000,
        retry_policy: RetryPolicy | None = None,
        call_timeout_ms: float | None = None,
        fallback_to_native: bool = True,
        telemetry=None,
        plan_cache=None,
    ) -> None:
        """``max_log_entries`` caps :attr:`query_log` (oldest entries are
        dropped first) so sustained traffic cannot grow memory without
        bound; ``None`` keeps the log unbounded.  The totals below keep
        counting past the cap.

        ``retry_policy`` bounds re-dispatch of transient driver failures;
        ``call_timeout_ms`` is the per-call (virtual) latency budget a
        driver answer may spend before the console discards it and serves
        natively; ``fallback_to_native=False`` re-raises driver errors
        once retries are exhausted instead of degrading.  ``telemetry``
        is an optional :class:`repro.serve.TelemetryBus` receiving
        ``console.*`` counters.

        ``plan_cache`` is an optional
        :class:`repro.optimizer.PlanCache`: natively-served queries (no
        active driver, or a driver that degraded) reuse compiled plans
        across literal bindings of the same template instead of
        re-planning, keyed on optimizer state and the database's
        ``data_version``.  It engages only when the interactor exposes
        the simulated-PostgreSQL surface (``optimizer`` / ``simulator`` /
        ``db``); other interactors keep their ``execute_default``."""
        self.interactor = interactor
        self._drivers: dict[str, _DriverSlot] = {}
        self.query_log: deque[QueryLogEntry] = deque(maxlen=max_log_entries)
        self.queries_served = 0
        self.served_by_counts: dict[str, int] = {}
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.call_timeout_ms = call_timeout_ms
        self.fallback_to_native = fallback_to_native
        self.telemetry = telemetry
        self.plan_cache = plan_cache
        self.driver_errors = 0
        self.retries = 0
        self.native_fallbacks = 0
        self.timeouts = 0
        self.retry_backoff_total_ms = 0.0
        self._updates_every = 0
        self._queries_since_update = 0

    def _incr(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(name)

    # -- driver management -----------------------------------------------------------

    def register_driver(self, driver) -> None:
        if driver.name in self._drivers:
            raise ConfigError(f"driver {driver.name!r} already registered")
        self._drivers[driver.name] = _DriverSlot(driver=driver)

    def start_driver(
        self, name: str, config: DriverConfig | None = None
    ) -> None:
        slot = self._slot(name)
        slot.driver.init(self.interactor, config)
        # Only one optimizer-replacing driver may be active at a time --
        # they would fight over the same injection point.
        if slot.driver.injection_type == "query_optimizer":
            for other_name, other in self._drivers.items():
                if (
                    other_name != name
                    and other.active
                    and other.driver.injection_type == "query_optimizer"
                ):
                    raise ConfigError(
                        f"cannot start {name!r}: optimizer driver "
                        f"{other_name!r} is already active"
                    )
        slot.active = True

    def stop_driver(self, name: str) -> None:
        self._slot(name).active = False

    def _slot(self, name: str) -> _DriverSlot:
        try:
            return self._drivers[name]
        except KeyError:
            raise KeyError(
                f"no driver {name!r}; registered: {sorted(self._drivers)}"
            ) from None

    def active_drivers(self) -> list[str]:
        return [n for n, s in self._drivers.items() if s.active]

    def enable_background_updates(self, every_n_queries: int) -> None:
        """Run each active driver's background_update periodically."""
        if every_n_queries < 1:
            raise ConfigError("update period must be >= 1")
        self._updates_every = every_n_queries

    # -- query execution ---------------------------------------------------------------

    def _serving_driver(self):
        for slot in self._drivers.values():
            if slot.active and slot.driver.injection_type in (
                "query_optimizer",
                "cardinality",
                "query_rewrite",
            ):
                return slot.driver
        return None

    def _dispatch(self, driver, query: Query) -> ExecutionOutcome | None:
        """One driver dispatch with retries and the latency budget.

        Returns ``None`` when the driver could not serve the query within
        policy (degrade to native) -- or re-raises when native fallback is
        disabled."""
        attempt = 0
        while True:
            try:
                outcome = driver.algo(query)
                break
            except _RETRYABLE:
                self.driver_errors += 1
                self._incr("console.driver_errors")
                attempt += 1
                if attempt >= self.retry_policy.max_attempts:
                    if not self.fallback_to_native:
                        raise
                    self.native_fallbacks += 1
                    self._incr("console.native_fallbacks")
                    return None
                self.retries += 1
                self.retry_backoff_total_ms += self.retry_policy.backoff_ms(
                    attempt - 1
                )
                self._incr("console.retries")
        if (
            self.call_timeout_ms is not None
            and outcome.latency_ms > self.call_timeout_ms
        ):
            # The driver answered, but too slowly to serve: charge it as a
            # timeout and degrade this query to native execution.
            self.timeouts += 1
            self._incr("console.timeouts")
            return None
        return outcome

    def _execute_native(self, query: Query) -> ExecutionOutcome:
        """Native execution, through the plan cache when one is wired.

        A cache hit replays the template's compiled plan with this
        query's literals substituted into the scans (prepared-statement
        semantics); a miss plans normally and populates the cache.
        """
        cache = self.plan_cache
        optimizer = getattr(self.interactor, "optimizer", None)
        simulator = getattr(self.interactor, "simulator", None)
        db = getattr(self.interactor, "db", None)
        if cache is None or optimizer is None or simulator is None or db is None:
            return self.interactor.execute_default(query)
        tag = estimator_cache_tag(optimizer.estimator)
        plan, hit = cache.get_or_plan(
            query, tag, db.data_version, optimizer.plan
        )
        self._incr("plan_cache.hits" if hit else "plan_cache.misses")
        result = simulator.execute(plan)
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=plan,
        )

    def execute(self, sql_or_query: str | Query) -> ExecutionOutcome:
        """Execute user SQL, transparently through the active driver."""
        query = (
            parse_query(sql_or_query)
            if isinstance(sql_or_query, str)
            else sql_or_query
        )
        driver = self._serving_driver()
        outcome = None
        served_by = "native"
        if driver is not None:
            outcome = self._dispatch(driver, query)
            if outcome is not None:
                served_by = driver.name
        if outcome is None:
            outcome = self._execute_native(query)
        self.query_log.append(
            QueryLogEntry(
                sql=query.to_sql(),
                served_by=served_by,
                cardinality=outcome.cardinality,
                latency_ms=outcome.latency_ms,
            )
        )
        self.queries_served += 1
        self.served_by_counts[served_by] = (
            self.served_by_counts.get(served_by, 0) + 1
        )
        self._queries_since_update += 1
        if self._updates_every and self._queries_since_update >= self._updates_every:
            self._queries_since_update = 0
            for slot in self._drivers.values():
                if slot.active:
                    slot.driver.background_update()
        return outcome

    def resilience_stats(self) -> dict[str, float]:
        """Gauge-friendly dispatch counters for telemetry snapshots."""
        return {
            "driver_errors": float(self.driver_errors),
            "retries": float(self.retries),
            "native_fallbacks": float(self.native_fallbacks),
            "timeouts": float(self.timeouts),
            "retry_backoff_total_ms": self.retry_backoff_total_ms,
        }
