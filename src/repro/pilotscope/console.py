"""The PilotScope console: the single entry point database users touch.

The console registers drivers, starts/stops them, and executes SQL.  From
the user's perspective nothing changes -- ``console.execute(sql)`` returns
the query result either way; whether an AI4DB driver served the query is
fully transparent (§3: "the execution of any AI4DB algorithm is totally
transparent to the database user").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.pilotscope.driver import Driver, DriverConfig
from repro.pilotscope.interactor import DBInteractor, ExecutionOutcome
from repro.sql.parser import parse_query
from repro.sql.query import Query

__all__ = ["PilotScopeConsole", "QueryLogEntry"]


@dataclass(frozen=True)
class QueryLogEntry:
    """One executed user query, for audit / experiments."""

    sql: str
    served_by: str  # driver name or "native"
    cardinality: int
    latency_ms: float


@dataclass
class _DriverSlot:
    driver: Driver
    active: bool = False


class PilotScopeConsole:
    """Operates drivers and routes user queries."""

    def __init__(
        self,
        interactor: DBInteractor,
        *,
        max_log_entries: int | None = 10_000,
    ) -> None:
        """``max_log_entries`` caps :attr:`query_log` (oldest entries are
        dropped first) so sustained traffic cannot grow memory without
        bound; ``None`` keeps the log unbounded.  The totals below keep
        counting past the cap."""
        self.interactor = interactor
        self._drivers: dict[str, _DriverSlot] = {}
        self.query_log: deque[QueryLogEntry] = deque(maxlen=max_log_entries)
        self.queries_served = 0
        self.served_by_counts: dict[str, int] = {}
        self._updates_every = 0
        self._queries_since_update = 0

    # -- driver management -----------------------------------------------------------

    def register_driver(self, driver: Driver) -> None:
        if driver.name in self._drivers:
            raise ValueError(f"driver {driver.name!r} already registered")
        self._drivers[driver.name] = _DriverSlot(driver=driver)

    def start_driver(
        self, name: str, config: DriverConfig | None = None
    ) -> None:
        slot = self._slot(name)
        slot.driver.init(self.interactor, config)
        # Only one optimizer-replacing driver may be active at a time --
        # they would fight over the same injection point.
        if slot.driver.injection_type == "query_optimizer":
            for other_name, other in self._drivers.items():
                if (
                    other_name != name
                    and other.active
                    and other.driver.injection_type == "query_optimizer"
                ):
                    raise ValueError(
                        f"cannot start {name!r}: optimizer driver "
                        f"{other_name!r} is already active"
                    )
        slot.active = True

    def stop_driver(self, name: str) -> None:
        self._slot(name).active = False

    def _slot(self, name: str) -> _DriverSlot:
        try:
            return self._drivers[name]
        except KeyError:
            raise KeyError(
                f"no driver {name!r}; registered: {sorted(self._drivers)}"
            ) from None

    def active_drivers(self) -> list[str]:
        return [n for n, s in self._drivers.items() if s.active]

    def enable_background_updates(self, every_n_queries: int) -> None:
        """Run each active driver's background_update periodically."""
        if every_n_queries < 1:
            raise ValueError("update period must be >= 1")
        self._updates_every = every_n_queries

    # -- query execution ---------------------------------------------------------------

    def _serving_driver(self) -> Driver | None:
        for slot in self._drivers.values():
            if slot.active and slot.driver.injection_type in (
                "query_optimizer",
                "cardinality",
            ):
                return slot.driver
        return None

    def execute(self, sql_or_query: str | Query) -> ExecutionOutcome:
        """Execute user SQL, transparently through the active driver."""
        query = (
            parse_query(sql_or_query)
            if isinstance(sql_or_query, str)
            else sql_or_query
        )
        driver = self._serving_driver()
        if driver is not None:
            outcome = driver.algo(query)
            served_by = driver.name
        else:
            outcome = self.interactor.execute_default(query)
            served_by = "native"
        self.query_log.append(
            QueryLogEntry(
                sql=query.to_sql(),
                served_by=served_by,
                cardinality=outcome.cardinality,
                latency_ms=outcome.latency_ms,
            )
        )
        self.queries_served += 1
        self.served_by_counts[served_by] = (
            self.served_by_counts.get(served_by, 0) + 1
        )
        self._queries_since_update += 1
        if self._updates_every and self._queries_since_update >= self._updates_every:
            self._queries_since_update = 0
            for slot in self._drivers.values():
                if slot.active:
                    slot.driver.background_update()
        return outcome
