"""The simulated-PostgreSQL implementation of the DB interactor.

Plays the role of the "lightweight patches to the database codebase"
PilotScope ships for PostgreSQL: it wires the push/pull operators into the
native optimizer's two steering surfaces (estimator wrapper, hint sets)
and the execution simulator.
"""

from __future__ import annotations

from repro.core.errors import ConfigError
from repro.core.interfaces import InjectedCardinalities, ScaledCardinalities
from repro.engine.plans import Plan
from repro.engine.simulator import ExecutionResult, ExecutionSimulator
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import Optimizer
from repro.pilotscope.interactor import (
    DBInteractor,
    ExecutionOutcome,
    PilotSession,
    enumerate_subqueries,
)
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["SimulatedPostgreSQL"]


class _SimSession(PilotSession):
    def __init__(self, host: "SimulatedPostgreSQL") -> None:
        super().__init__()
        self.host = host
        self._injected = InjectedCardinalities(host.optimizer.estimator)
        self._scale: float | None = None
        self._hints: HintSet | None = None
        self._config: dict[str, object] = {"algorithm": "dp"}

    # -- push ------------------------------------------------------------------

    def push_cardinalities(self, cards: dict[str, float]) -> None:
        self._check_open()
        self._injected.inject_batch(cards)

    def push_hint_set(self, hints: HintSet) -> None:
        self._check_open()
        self._hints = hints

    def push_cardinality_scale(self, factor: float) -> None:
        self._check_open()
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        self._scale = factor

    def push_config(self, key: str, value) -> None:
        self._check_open()
        if key not in ("algorithm",):
            raise KeyError(f"unknown config knob {key!r}")
        self._config[key] = value

    # -- session-effective planner ------------------------------------------------

    def _effective_optimizer(self) -> Optimizer:
        estimator = self._injected
        if self._scale is not None and self._scale != 1.0:
            estimator = ScaledCardinalities(estimator, self._scale)
        return self.host.optimizer.with_estimator(estimator)

    # -- pull ----------------------------------------------------------------------

    def pull_subqueries(self, query: Query) -> list[Query]:
        self._check_open()
        return enumerate_subqueries(query)

    def pull_plan(self, query: Query) -> Plan:
        self._check_open()
        return self._effective_optimizer().plan(
            query,
            hints=self._hints,
            algorithm=str(self._config["algorithm"]),
        )

    def pull_execution(self, plan: Plan) -> ExecutionResult:
        self._check_open()
        return self.host.simulator.execute(plan)

    def pull_native_estimate(self, query: Query) -> float:
        self._check_open()
        return self.host.optimizer.estimator.estimate(query)

    # -- lifecycle --------------------------------------------------------------------

    def reset_pushes(self) -> None:
        self._injected.clear()
        self._scale = None
        self._hints = None
        self._config = {"algorithm": "dp"}


class SimulatedPostgreSQL(DBInteractor):
    """DB interactor over the in-repo engine (optimizer + simulator)."""

    def __init__(
        self,
        db: Database,
        optimizer: Optimizer | None = None,
        simulator: ExecutionSimulator | None = None,
    ) -> None:
        self.db = db
        self.optimizer = optimizer if optimizer is not None else Optimizer(db)
        self.simulator = (
            simulator if simulator is not None else ExecutionSimulator(db)
        )

    def open_session(self) -> PilotSession:
        return _SimSession(self)

    def execute_default(self, query: Query) -> ExecutionOutcome:
        plan = self.optimizer.plan(query)
        result = self.simulator.execute(plan)
        return ExecutionOutcome(
            cardinality=result.cardinality,
            latency_ms=result.latency_ms,
            plan=plan,
        )
