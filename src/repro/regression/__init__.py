"""Performance-regression elimination (paper §2.2.2).

Plugins deployed *on top of* any learned optimizer that decide, per query,
whether the learned plan is safe to run or the native plan should be kept:

- :class:`Eraser` [62]: two-stage -- a coarse filter rejecting plans with
  (nearly) unseen structural features, then plan clustering with
  per-cluster reliability tracking;
- :class:`PerfGuard` [18]: a learned pairwise guard predicting whether the
  candidate would regress against the native plan;
- :class:`GuardChain`: stacks several guards into one (applied in order,
  feedback fanned out to all), so a deployment can run Eraser's structural
  filter and PerfGuard's learned veto together.

Both implement the guard interface of
:class:`repro.e2e.loop.OptimizationLoop`: called as
``guard(query, candidate, native_plan)`` before execution and
``guard.record(query, candidate, latency, native_latency)`` after, they
learn which plans to distrust from the same feedback stream the optimizer
itself consumes.
"""

from repro.regression.chain import GuardChain
from repro.regression.eraser import Eraser
from repro.regression.perfguard import PerfGuard

__all__ = ["Eraser", "GuardChain", "PerfGuard"]
