"""Eraser [62]: eliminating learned-optimizer regressions in two stages.

Stage 1 (coarse filter): a candidate plan containing structural features
(operator/table-set signatures) observed fewer than ``min_feature_count``
times is *highly risky* -- the learned model cannot have learned anything
about it -- and is replaced by the native plan.

Stage 2 (plan clustering): executed candidates are clustered in plan
feature space; each cluster tracks the observed regression ratios of its
members against the native plan.  When a new candidate falls into a
cluster whose tail regression exceeds ``regression_threshold``, the native
plan is kept instead.

Deployable on top of any learned optimizer via the
:class:`repro.e2e.loop.OptimizationLoop` ``guard`` hook -- exactly the
plugin positioning the paper describes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.framework import CandidatePlan
from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import JoinNode, Plan, PlanNode, ScanNode
from repro.ml.cluster import KMeans
from repro.sql.query import Query

__all__ = ["Eraser"]


def _plan_features(plan: Plan) -> set[str]:
    """Structural feature signatures: per-node operator + table set."""
    feats: set[str] = set()
    for node in plan.walk():
        if isinstance(node, ScanNode):
            feats.add(f"{node.method.value}:{node.table}")
        else:
            assert isinstance(node, JoinNode)
            feats.add(f"{node.method.value}:{'+'.join(sorted(node.tables))}")
    return feats


class Eraser:
    """Two-stage regression eliminator; use as an OptimizationLoop guard."""

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        min_feature_count: int = 1,
        n_clusters: int = 8,
        regression_threshold: float = 1.4,
        recluster_every: int = 30,
        min_cluster_history: int = 3,
    ) -> None:
        self.featurizer = featurizer
        self.min_feature_count = min_feature_count
        self.n_clusters = n_clusters
        self.regression_threshold = regression_threshold
        self.recluster_every = recluster_every
        self.min_cluster_history = min_cluster_history
        self._feature_counts: dict[str, int] = {}
        self._vectors: list[np.ndarray] = []
        self._regressions: list[float] = []  # log(candidate / native)
        self._kmeans: KMeans | None = None
        self._since_recluster = 0
        self.interventions = 0
        self.decisions = 0

    # -- guard interface --------------------------------------------------------------

    def __call__(
        self, query: Query, candidate: CandidatePlan, native_plan: Plan
    ) -> CandidatePlan:
        self.decisions += 1
        if candidate.plan.signature() == native_plan.signature():
            return candidate
        # Stage 1: unseen-feature coarse filter.
        for feat in _plan_features(candidate.plan):
            if self._feature_counts.get(feat, 0) < self.min_feature_count:
                self.interventions += 1
                return CandidatePlan(plan=native_plan, source="eraser:coarse")
        # Stage 2: cluster reliability.
        if self._kmeans is not None:
            vec = self.featurizer.flat(candidate.plan)
            cluster = int(self._kmeans.predict(vec[None, :])[0])
            members = [
                r
                for v, r in zip(self._vectors, self._regressions)
                if int(self._kmeans.predict(v[None, :])[0]) == cluster
            ]
            if len(members) >= self.min_cluster_history:
                tail = float(np.percentile(members, 90))
                if tail > math.log(self.regression_threshold):
                    self.interventions += 1
                    return CandidatePlan(plan=native_plan, source="eraser:cluster")
        return candidate

    def record(
        self,
        query: Query,
        candidate: CandidatePlan,
        latency_ms: float,
        native_latency_ms: float,
    ) -> None:
        """Feed back an executed decision (called by the loop)."""
        for feat in _plan_features(candidate.plan):
            self._feature_counts[feat] = self._feature_counts.get(feat, 0) + 1
        self._vectors.append(self.featurizer.flat(candidate.plan))
        self._regressions.append(
            math.log(max(latency_ms, 1e-9) / max(native_latency_ms, 1e-9))
        )
        self._since_recluster += 1
        if self._since_recluster >= self.recluster_every and len(self._vectors) >= 10:
            self._recluster()
            self._since_recluster = 0

    def _recluster(self) -> None:
        x = np.stack(self._vectors[-500:])
        k = min(self.n_clusters, x.shape[0])
        self._kmeans = KMeans(n_clusters=k, seed=0).fit(x)

    @property
    def intervention_rate(self) -> float:
        return self.interventions / self.decisions if self.decisions else 0.0
