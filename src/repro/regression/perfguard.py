"""PerfGuard [18]: a learned pairwise regression guard.

A pairwise comparison model (graph/tree-structured in the paper; our
shared tree-conv comparator) is trained on (candidate, native, outcome)
pairs from the deployment's own feedback stream and vetoes any candidate
predicted to be slower than the native plan with probability above the
confidence threshold -- "deploying ML-for-systems without performance
regressions, almost".
"""

from __future__ import annotations

from repro.core.framework import CandidatePlan
from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.e2e.risk_models import PairwisePlanComparator
from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = ["PerfGuard"]


class PerfGuard:
    """Pairwise veto guard; use as an OptimizationLoop guard."""

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        confidence: float = 0.45,
        retrain_every: int = 30,
        seed: int = 0,
    ) -> None:
        """``confidence``: veto when P(candidate slower than native)
        exceeds this threshold (0.5 = veto whenever the model leans
        negative; lower = more conservative)."""
        self.featurizer = featurizer
        self.confidence = confidence
        self.retrain_every = retrain_every
        self.comparator = PairwisePlanComparator(featurizer, seed=seed)
        self._since_retrain = 0
        self.interventions = 0
        self.decisions = 0

    def __call__(
        self, query: Query, candidate: CandidatePlan, native_plan: Plan
    ) -> CandidatePlan:
        self.decisions += 1
        if candidate.plan.signature() == native_plan.signature():
            return candidate
        p_candidate_faster = self.comparator.compare(candidate.plan, native_plan)
        if p_candidate_faster < 1.0 - self.confidence:
            self.interventions += 1
            return CandidatePlan(plan=native_plan, source="perfguard")
        return candidate

    def record(
        self,
        query: Query,
        candidate: CandidatePlan,
        latency_ms: float,
        native_latency_ms: float,
    ) -> None:
        """Every executed decision yields a labelled (candidate, native)
        pair -- the native latency is always measured by the loop."""
        key = query.to_sql()
        cand_tree = plan_to_tree_arrays(candidate.plan, self.featurizer)
        self.comparator._by_query.setdefault(key, []).append(
            (cand_tree, float(latency_ms))
        )
        self._since_retrain += 1
        if self._since_retrain >= self.retrain_every:
            self.comparator.retrain()
            self._since_retrain = 0

    def record_native(
        self, query: Query, native_plan: Plan, native_latency_ms: float
    ) -> None:
        """Record the native plan's measured latency for the same query."""
        key = query.to_sql()
        tree = plan_to_tree_arrays(native_plan, self.featurizer)
        self.comparator._by_query.setdefault(key, []).append(
            (tree, float(native_latency_ms))
        )

    @property
    def intervention_rate(self) -> float:
        return self.interventions / self.decisions if self.decisions else 0.0
