"""Stacking regression guards: several vetoes, one guard interface.

A deployment may want Eraser's structural filter *and* PerfGuard's learned
pairwise veto on the same loop.  :class:`GuardChain` composes any number
of guards into one object satisfying the
:class:`repro.e2e.loop.OptimizationLoop` guard interface: selection runs
the guards in the given order (each sees the previous guard's choice, so
an early veto is final -- once a guard has swapped in the native plan,
later guards pass it through), and feedback fans out to every member so
each keeps learning from the full execution stream.
"""

from __future__ import annotations

from repro.core.framework import CandidatePlan
from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = ["GuardChain"]


class GuardChain:
    """Apply guards in order; forward feedback to all of them."""

    def __init__(self, *guards) -> None:
        if not guards:
            raise ValueError("GuardChain needs at least one guard")
        self.guards = tuple(guards)
        #: per-decision application order, e.g. ["eraser:coarse"] when the
        #: first guard intervened -- kept for tests and telemetry.
        self.last_applied: list[str] = []

    def __call__(
        self, query: Query, candidate: CandidatePlan, native_plan: Plan
    ) -> CandidatePlan:
        self.last_applied = []
        for guard in self.guards:
            swapped = guard(query, candidate, native_plan)
            if swapped is not candidate:
                self.last_applied.append(swapped.source)
            candidate = swapped
        return candidate

    def record(
        self,
        query: Query,
        candidate: CandidatePlan,
        latency_ms: float,
        native_latency_ms: float,
    ) -> None:
        for guard in self.guards:
            if hasattr(guard, "record"):
                guard.record(query, candidate, latency_ms, native_latency_ms)

    def record_native(
        self, query: Query, native_plan: Plan, native_latency_ms: float
    ) -> None:
        for guard in self.guards:
            if hasattr(guard, "record_native"):
                guard.record_native(query, native_plan, native_latency_ms)

    @property
    def intervention_rate(self) -> float:
        rates = [
            g.intervention_rate
            for g in self.guards
            if hasattr(g, "intervention_rate")
        ]
        return max(rates) if rates else 0.0
