"""Stacking regression guards: several vetoes, one guard interface.

A deployment may want Eraser's structural filter *and* PerfGuard's learned
pairwise veto on the same loop.  :class:`GuardChain` composes any number
of guards into one object satisfying the
:class:`repro.e2e.loop.OptimizationLoop` guard interface: selection runs
the guards in the given order (each sees the previous guard's choice, so
an early veto is final -- once a guard has swapped in the native plan,
later guards pass it through), and feedback fans out to every member so
each keeps learning from the full execution stream.

**Fault containment.**  Guards are learned components too and may throw.
An exception from one guard must not abort the optimization loop
mid-query, so the chain contains it: the failing guard is treated as a
"veto abstain" (the candidate passes through unchanged), the error is
counted (:attr:`GuardChain.errors`, :attr:`GuardChain.last_errors`) and
reported to the attached telemetry bus, and the remaining guards still
run.  The same applies to feedback fan-out -- one guard's broken
``record`` cannot starve the others of training signal.
"""

from __future__ import annotations

from repro.core.framework import CandidatePlan
from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = ["GuardChain"]


class GuardChain:
    """Apply guards in order; forward feedback to all of them."""

    def __init__(self, *guards, telemetry=None) -> None:
        if not guards:
            raise ValueError("GuardChain needs at least one guard")
        self.guards = tuple(guards)
        #: optional telemetry bus (``incr``/``event``); the deployment
        #: manager points this at its own bus.
        self.telemetry = telemetry
        #: per-decision application order, e.g. ["eraser:coarse"] when the
        #: first guard intervened -- kept for tests and telemetry.
        self.last_applied: list[str] = []
        #: total contained guard exceptions (decisions + feedback)
        self.errors = 0
        #: ``(guard_name, error_repr)`` of the most recent decision's
        #: contained exceptions
        self.last_errors: list[tuple[str, str]] = []

    def _contain(self, guard, exc: Exception, phase: str) -> None:
        self.errors += 1
        self.last_errors.append((type(guard).__name__, repr(exc)))
        if self.telemetry is not None:
            self.telemetry.incr("guard.errors")
            self.telemetry.incr(f"guard.errors.{phase}")

    def __call__(
        self, query: Query, candidate: CandidatePlan, native_plan: Plan
    ) -> CandidatePlan:
        self.last_applied = []
        self.last_errors = []
        for guard in self.guards:
            try:
                swapped = guard(query, candidate, native_plan)
            except Exception as exc:
                # Contained: a crashing guard abstains from the veto.
                self._contain(guard, exc, "decision")
                continue
            if swapped is not candidate:
                self.last_applied.append(swapped.source)
            candidate = swapped
        return candidate

    def record(
        self,
        query: Query,
        candidate: CandidatePlan,
        latency_ms: float,
        native_latency_ms: float,
    ) -> None:
        for guard in self.guards:
            if hasattr(guard, "record"):
                try:
                    guard.record(query, candidate, latency_ms, native_latency_ms)
                except Exception as exc:
                    self._contain(guard, exc, "feedback")

    def record_native(
        self, query: Query, native_plan: Plan, native_latency_ms: float
    ) -> None:
        for guard in self.guards:
            if hasattr(guard, "record_native"):
                try:
                    guard.record_native(query, native_plan, native_latency_ms)
                except Exception as exc:
                    self._contain(guard, exc, "feedback")

    @property
    def intervention_rate(self) -> float:
        rates = [
            g.intervention_rate
            for g in self.guards
            if hasattr(g, "intervention_rate")
        ]
        return max(rates) if rates else 0.0
