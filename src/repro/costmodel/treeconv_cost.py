"""Tree-convolution cost model (Marcus & Papaemmanouil [39]).

The plan-structured deep model: tree convolution over per-node features,
dynamic pooling, MLP head regressing log latency.  The same architecture
(with different heads) powers the risk models of Neo and Bao.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.engine.plans import Plan
from repro.ml.treeconv import TreeConvNet

__all__ = ["TreeConvCostModel"]


class TreeConvCostModel:
    """Tree-convolution network regressing ``log(1 + latency_ms)``."""

    name = "treeconv_cost"

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        conv_channels: tuple[int, ...] = (64, 64),
        head_hidden: tuple[int, ...] = (32,),
        epochs: int = 50,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.net = TreeConvNet(
            featurizer.node_dim,
            conv_channels=conv_channels,
            head_hidden=head_hidden,
            seed=seed,
        )
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._fitted = False

    def _trees(self, plans: list[Plan]):
        return [plan_to_tree_arrays(p, self.featurizer) for p in plans]

    def fit(self, plans: list[Plan], latencies_ms: np.ndarray) -> "TreeConvCostModel":
        if not plans:
            raise ValueError("empty training corpus")
        y = np.log1p(np.maximum(np.asarray(latencies_ms, dtype=float), 0.0))
        self.net.fit(
            self._trees(plans), y, epochs=self.epochs, lr=self.lr, seed=self.seed
        )
        self._fitted = True
        return self

    def predict_latency(self, plan: Plan) -> float:
        if not self._fitted:
            raise RuntimeError("predict_latency called before fit")
        pred = self.net.predict(self._trees([plan]))[0]
        return float(max(np.expm1(pred), 0.0))

    def predict_batch(self, plans: list[Plan]) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict_batch called before fit")
        if not plans:
            return np.zeros(0)
        return np.maximum(np.expm1(self.net.predict(self._trees(plans))), 0.0)
