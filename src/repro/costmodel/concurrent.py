"""Concurrent-query cost modelling (GPredictor [78] / Prestroid [20]).

Two pieces:

- :class:`ConcurrentWorkload` -- an interference *simulator*: queries
  running in a mix slow each other down proportionally to shared-table
  contention and the co-runners' resource footprints (the phenomenon the
  learned models capture);
- :class:`ConcurrentCostModel` -- a graph-style learned predictor: each
  query's features are its own plan features plus an aggregation of its
  co-runners' features weighted by table overlap (one round of
  message passing over the query-interference graph, GPredictor's core),
  fed to an MLP regressing per-query latency in the mix.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import Plan
from repro.engine.simulator import ExecutionSimulator
from repro.ml.nn import MLP

__all__ = ["ConcurrentWorkload", "ConcurrentCostModel"]


def _table_overlap(a: Plan, b: Plan) -> float:
    """Jaccard overlap of the base tables two plans touch."""
    ta, tb = a.root.tables, b.root.tables
    union = len(ta | tb)
    return len(ta & tb) / union if union else 0.0


class ConcurrentWorkload:
    """Deterministic interference model over a mix of plans.

    latency_i = base_i * (1 + alpha * sum_{j != i} overlap(i, j) * load_j)

    where ``load_j`` is co-runner j's base latency normalized by the mix
    mean -- heavier co-runners interfere more, and only via shared tables.
    """

    def __init__(self, simulator: ExecutionSimulator, alpha: float = 0.6) -> None:
        self.simulator = simulator
        self.alpha = alpha

    def run(self, plans: list[Plan]) -> np.ndarray:
        """Per-query latencies (ms) of the whole mix executing together."""
        if not plans:
            return np.zeros(0)
        base = np.array([self.simulator.execute(p).latency_ms for p in plans])
        mean = max(base.mean(), 1e-9)
        load = base / mean
        out = np.empty(len(plans))
        for i, plan in enumerate(plans):
            interference = sum(
                _table_overlap(plan, other) * load[j]
                for j, other in enumerate(plans)
                if j != i
            )
            out[i] = base[i] * (1.0 + self.alpha * interference)
        return out


class ConcurrentCostModel:
    """Interference-aware latency predictor for queries in a mix."""

    name = "concurrent_cost"

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        hidden: tuple[int, ...] = (64, 64),
        epochs: int = 80,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._net: MLP | None = None

    def _mix_features(self, plans: list[Plan]) -> np.ndarray:
        own = self.featurizer.flat_batch(plans)
        rows = []
        for i, plan in enumerate(plans):
            neighbor = np.zeros(own.shape[1])
            total_w = 0.0
            for j, other in enumerate(plans):
                if j == i:
                    continue
                w = _table_overlap(plan, other)
                neighbor += w * own[j]
                total_w += w
            degree = np.array([total_w, len(plans) / 16.0])
            rows.append(np.concatenate([own[i], neighbor, degree]))
        return np.stack(rows)

    def fit(
        self, mixes: list[list[Plan]], latencies: list[np.ndarray]
    ) -> "ConcurrentCostModel":
        """Train from observed mixes and their per-query latencies."""
        if not mixes:
            raise ValueError("no training mixes")
        xs, ys = [], []
        for plans, lats in zip(mixes, latencies):
            if len(plans) != len(lats):
                raise ValueError("mix/latency length mismatch")
            xs.append(self._mix_features(plans))
            ys.append(np.log1p(np.maximum(np.asarray(lats, dtype=float), 0.0)))
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys)
        self._net = MLP(x.shape[1], self.hidden, 1, seed=self.seed)
        self._net.fit(x, y, epochs=self.epochs, lr=self.lr, val_fraction=0.1)
        return self

    def predict_mix(self, plans: list[Plan]) -> np.ndarray:
        """Predicted per-query latencies for a mix."""
        if self._net is None:
            raise RuntimeError("predict_mix called before fit")
        if not plans:
            return np.zeros(0)
        x = self._mix_features(plans)
        return np.maximum(np.expm1(np.atleast_1d(self._net.predict(x))), 0.0)
