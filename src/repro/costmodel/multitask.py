"""MLMTF-style unified transferable model [66].

"A pre-trained model to represent shared knowledge across data and tasks,
fine-tuned for a specific data[base]; upon it several small models are
learned together using multi-task learning for each task: cardinality
estimation, cost model and join order search."

:class:`UnifiedTransferableModel` realizes that recipe at this repo's
scale: one shared tree-convolution trunk over plan trees is pre-trained
with a *joint* loss on two tasks (log-latency and log-cardinality of every
plan node subtree's root); per-task linear heads sit on the shared plan
embedding.  :meth:`fine_tune` freezes the trunk and refits only a task
head from a handful of examples -- the transfer step that makes the model
cheap to specialize to a new workload.

The same object therefore serves as:
- a cost model (``predict_latency``),
- a cardinality estimator over plans (``predict_cardinality``),
- a join-order value function (``value``: predicted latency, usable by
  the value-guided searchers).
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.engine.plans import Plan
from repro.ml.nn import Adam
from repro.ml.treeconv import PlanTreeBatch, TreeConvNet

__all__ = ["UnifiedTransferableModel"]

_TASKS = ("latency", "cardinality")


class UnifiedTransferableModel:
    """Shared tree-conv trunk + per-task heads, jointly pre-trained."""

    name = "mlmtf"

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        conv_channels: tuple[int, ...] = (48, 48),
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        # out_dim = one output per task; the trunk is shared by design.
        self.net = TreeConvNet(
            featurizer.node_dim,
            conv_channels=conv_channels,
            head_hidden=(24,),
            out_dim=len(_TASKS),
            seed=seed,
        )
        self._trained = False
        self._rng = np.random.default_rng(seed)

    # -- pre-training ----------------------------------------------------------------

    def pretrain(
        self,
        plans: list[Plan],
        latencies_ms: np.ndarray,
        cardinalities: np.ndarray,
        *,
        epochs: int = 50,
        lr: float = 1e-3,
        batch_size: int = 32,
    ) -> list[float]:
        """Joint multi-task training on (plan, latency, cardinality)."""
        if not (len(plans) == len(latencies_ms) == len(cardinalities)):
            raise ValueError("plans/latencies/cardinalities must align")
        if not plans:
            raise ValueError("empty pre-training corpus")
        trees = [plan_to_tree_arrays(p, self.featurizer) for p in plans]
        y = np.column_stack(
            [
                np.log1p(np.maximum(np.asarray(latencies_ms, float), 0.0)),
                np.log1p(np.maximum(np.asarray(cardinalities, float), 0.0)),
            ]
        )
        opt = Adam(lr=lr)
        losses: list[float] = []
        n = len(trees)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                batch = PlanTreeBatch.from_trees([trees[i] for i in idx])
                pred = self.net.forward(batch)
                diff = pred - y[idx]
                loss = float((diff**2).mean())
                grad = 2.0 * diff / max(diff.size, 1)
                self.net._backward(batch, grad)
                opt.step(self.net.parameters(), self.net.gradients())
                total += loss
                batches += 1
            losses.append(total / max(batches, 1))
        self._trained = True
        return losses

    # -- fine-tuning -----------------------------------------------------------------

    def fine_tune(
        self,
        task: str,
        plans: list[Plan],
        targets: np.ndarray,
        *,
        epochs: int = 40,
        lr: float = 2e-3,
    ) -> None:
        """Refit only the head (trunk frozen) for one task on new data.

        This is the transfer step: the shared representation stays, the
        small task model adapts.
        """
        col = self._task_index(task)
        if not self._trained:
            raise RuntimeError("fine_tune called before pretrain")
        if len(plans) != len(targets):
            raise ValueError("plans/targets must align")
        trees = [plan_to_tree_arrays(p, self.featurizer) for p in plans]
        y = np.log1p(np.maximum(np.asarray(targets, float), 0.0))
        # Head parameters = everything after the conv trunk.
        head_params: list[np.ndarray] = []
        for layer in self.net.head:
            head_params.extend(layer.parameters())
        opt = Adam(lr=lr)
        n = len(trees)
        for _ in range(epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, 32):
                idx = order[start : start + 32]
                batch = PlanTreeBatch.from_trees([trees[i] for i in idx])
                pred = self.net.forward(batch)
                grad = np.zeros_like(pred)
                grad[:, col] = 2.0 * (pred[:, col] - y[idx]) / max(idx.size, 1)
                self.net._backward(batch, grad)
                head_grads: list[np.ndarray] = []
                for layer in self.net.head:
                    head_grads.extend(layer.gradients())
                opt.step(head_params, head_grads)

    # -- task predictions ---------------------------------------------------------------

    @staticmethod
    def _task_index(task: str) -> int:
        try:
            return _TASKS.index(task)
        except ValueError:
            raise ValueError(f"unknown task {task!r}; valid: {_TASKS}") from None

    def _predict(self, plan: Plan) -> np.ndarray:
        if not self._trained:
            raise RuntimeError("predict called before pretrain")
        tree = plan_to_tree_arrays(plan, self.featurizer)
        out = self.net.forward(PlanTreeBatch.from_trees([tree]))
        return out[0]

    def predict_latency(self, plan: Plan) -> float:
        return float(max(np.expm1(self._predict(plan)[0]), 0.0))

    def predict_cardinality(self, plan: Plan) -> float:
        return float(max(np.expm1(self._predict(plan)[1]), 0.0))

    def value(self, plan: Plan) -> float:
        """Join-order search value: lower predicted latency = better."""
        return float(self._predict(plan)[0])

    def embed(self, plan: Plan) -> np.ndarray:
        """The shared-representation plan embedding."""
        tree = plan_to_tree_arrays(plan, self.featurizer)
        return self.net.embed(PlanTreeBatch.from_trees([tree]))[0]
