"""BASE-style calibrated cost model [5].

BASE's observation: the native cost model *ranks* plans well but its cost
units do not correspond to latency ("bridging the gap between cost and
latency"), so instead of learning latency from scratch it learns a
monotone *calibration* from cost to latency using few executed plans.

:class:`CalibratedCostModel` fits an isotonic (pool-adjacent-violators)
regression from estimated plan cost to observed latency.  Because the map
is monotone it preserves the cost model's ranking while fixing its scale
-- which also makes it usable as a risk model that needs far fewer
executions than a from-scratch latency network.
"""

from __future__ import annotations

import numpy as np

from repro.engine.plans import Plan
from repro.optimizer.planner import Optimizer

__all__ = ["isotonic_fit", "CalibratedCostModel"]


def isotonic_fit(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Pool-adjacent-violators isotonic regression.

    Returns ``(x_sorted, y_fitted)`` where ``y_fitted`` is non-decreasing;
    predictions interpolate between the fitted points.
    """
    order = np.argsort(x, kind="stable")
    xs = np.asarray(x, dtype=float)[order]
    ys = np.asarray(y, dtype=float)[order]
    n = ys.shape[0]
    # Blocks of (value, weight).
    values = ys.copy()
    weights = np.ones(n)
    # PAVA with an explicit block stack.
    block_value: list[float] = []
    block_weight: list[float] = []
    block_end: list[int] = []
    for i in range(n):
        v, w = float(values[i]), 1.0
        while block_value and block_value[-1] > v:
            pv, pw = block_value.pop(), block_weight.pop()
            block_end.pop()
            v = (v * w + pv * pw) / (w + pw)
            w += pw
        block_value.append(v)
        block_weight.append(w)
        block_end.append(i)
    fitted = np.empty(n)
    start = 0
    for v, end in zip(block_value, block_end):
        fitted[start : end + 1] = v
        start = end + 1
    return xs, fitted


class CalibratedCostModel:
    """Monotone cost -> latency calibration (BASE [5]).

    Parameters
    ----------
    optimizer:
        Supplies the underlying (uncalibrated) cost function.
    """

    name = "calibrated_cost"

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._observed: list[tuple[float, float]] = []

    @property
    def n_observations(self) -> int:
        return len(self._observed)

    def observe(self, plan: Plan, latency_ms: float) -> None:
        """Record one executed plan's (cost, latency) pair."""
        self._observed.append(
            (float(self.optimizer.cost(plan)), float(latency_ms))
        )

    def fit(
        self, plans: list[Plan] | None = None, latencies: np.ndarray | None = None
    ) -> "CalibratedCostModel":
        """Fit the calibration from recorded and/or supplied pairs."""
        pairs = list(self._observed)
        if plans is not None:
            if latencies is None or len(plans) != len(latencies):
                raise ValueError("plans and latencies must align")
            pairs += [
                (float(self.optimizer.cost(p)), float(l))
                for p, l in zip(plans, latencies)
            ]
        if len(pairs) < 2:
            raise ValueError("need at least 2 executed plans to calibrate")
        x = np.array([c for c, _ in pairs])
        y = np.array([l for _, l in pairs])
        self._x, self._y = isotonic_fit(x, y)
        return self

    def predict_latency(self, plan: Plan) -> float:
        if self._x is None or self._y is None:
            raise RuntimeError("predict_latency called before fit")
        cost = float(self.optimizer.cost(plan))
        return float(np.interp(cost, self._x, self._y))

    def calibration_error(self, plans: list[Plan], latencies: np.ndarray) -> float:
        """Median relative error of calibrated predictions on a test set."""
        preds = np.array([self.predict_latency(p) for p in plans])
        truths = np.asarray(latencies, dtype=float)
        return float(
            np.median(np.abs(preds - truths) / np.maximum(truths, 1e-9))
        )
