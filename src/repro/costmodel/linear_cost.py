"""Linear cost model over flat plan features (the classic baseline)."""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import Plan

__all__ = ["LinearPlanCostModel"]


class LinearPlanCostModel:
    """Ridge regression from flat plan features to log latency."""

    name = "linear_cost"

    def __init__(self, featurizer: PlanFeaturizer, l2: float = 1.0) -> None:
        self.featurizer = featurizer
        self.l2 = l2
        self._w: np.ndarray | None = None

    def fit(self, plans: list[Plan], latencies_ms: np.ndarray) -> "LinearPlanCostModel":
        if not plans:
            raise ValueError("empty training corpus")
        x = self.featurizer.flat_batch(plans)
        y = np.log1p(np.maximum(np.asarray(latencies_ms, dtype=float), 0.0))
        xb = np.column_stack([x, np.ones(x.shape[0])])
        gram = xb.T @ xb + self.l2 * np.eye(xb.shape[1])
        self._w = np.linalg.solve(gram, xb.T @ y)
        return self

    def predict_latency(self, plan: Plan) -> float:
        if self._w is None:
            raise RuntimeError("predict_latency called before fit")
        x = self.featurizer.flat(plan)
        xb = np.append(x, 1.0)
        return float(np.expm1(xb @ self._w))
