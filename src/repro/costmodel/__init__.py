"""Learned cost models (paper §2.1.2).

Models predicting plan execution latency from plan structure:

- :class:`LinearPlanCostModel` -- linear regression over flat plan
  features (the classic baseline the deep models are compared against);
- :class:`TreeConvCostModel` -- tree convolution over the plan tree
  (Marcus & Papaemmanouil [39]);
- :class:`TreeRecurrentCostModel` -- bottom-up recursive (Tree-LSTM-style)
  state propagation (Sun & Li [51]);
- :class:`ZeroShotCostModel` -- transferable per-operator features that
  generalize across databases (Hilprecht & Binnig [16]);
- :class:`ConcurrentCostModel` -- interference-aware prediction for
  concurrent query mixes (GPredictor [78] / Prestroid [20]).

All implement ``predict_latency(plan) -> float`` (milliseconds) plus
``fit(plans, latencies)``; plan featurization lives in
:mod:`repro.costmodel.features` and is shared with the end-to-end
optimizers' risk models.
"""

from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.costmodel.linear_cost import LinearPlanCostModel
from repro.costmodel.treeconv_cost import TreeConvCostModel
from repro.costmodel.recurrent_cost import TreeRecurrentCostModel
from repro.costmodel.zeroshot import ZeroShotCostModel
from repro.costmodel.concurrent import ConcurrentCostModel, ConcurrentWorkload
from repro.costmodel.calibrated import CalibratedCostModel
from repro.costmodel.multitask import UnifiedTransferableModel
from repro.costmodel.embeddings import PlanAutoencoder

__all__ = [
    "CalibratedCostModel",
    "UnifiedTransferableModel",
    "PlanAutoencoder",
    "PlanFeaturizer",
    "plan_to_tree_arrays",
    "LinearPlanCostModel",
    "TreeConvCostModel",
    "TreeRecurrentCostModel",
    "ZeroShotCostModel",
    "ConcurrentCostModel",
    "ConcurrentWorkload",
]
