"""Plan-embedding models (Saturn [34], QueryFormer [76] -- lite).

Saturn compresses query plans into vectors with a traversal-based
autoencoder and shows the compressed vectors distinguish query types for
downstream tasks; QueryFormer learns transformer embeddings of plans
reused across query-optimization tasks.

:class:`PlanAutoencoder` realizes the shared idea at this repo's scale: a
plan is serialized by pre-order traversal into a fixed-length
feature sequence (padded/truncated), an MLP encoder compresses it to a
small latent vector, and a decoder reconstructs the sequence; training
minimizes reconstruction error.  The latent vectors cluster plans by
structural type (join count, operator mix) without any labels, which the
tests verify, and can feed any downstream model.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.engine.plans import Plan
from repro.ml.nn import MLP, Adam, Dense, ReLU, Sequential

__all__ = ["PlanAutoencoder"]


class PlanAutoencoder:
    """Traversal-sequence autoencoder over plans (Saturn-lite)."""

    name = "plan_autoencoder"

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        max_nodes: int = 12,
        latent_dim: int = 8,
        hidden: int = 64,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.max_nodes = max_nodes
        self.latent_dim = latent_dim
        self._in_dim = max_nodes * featurizer.node_dim
        rng = np.random.default_rng(seed)
        self.encoder = Sequential(
            [
                Dense(self._in_dim, hidden, rng=rng),
                ReLU(),
                Dense(hidden, latent_dim, init="xavier", rng=rng),
            ]
        )
        self.decoder = Sequential(
            [
                Dense(latent_dim, hidden, rng=rng),
                ReLU(),
                Dense(hidden, self._in_dim, init="xavier", rng=rng),
            ]
        )
        self._rng = rng
        self._trained = False

    # -- serialization -------------------------------------------------------------

    def _serialize(self, plan: Plan) -> np.ndarray:
        feats, _, _ = plan_to_tree_arrays(plan, self.featurizer)
        out = np.zeros((self.max_nodes, self.featurizer.node_dim))
        n = min(feats.shape[0], self.max_nodes)
        out[:n] = feats[:n]
        return out.reshape(-1)

    # -- training ----------------------------------------------------------------------

    def fit(
        self,
        plans: list[Plan],
        *,
        epochs: int = 60,
        lr: float = 2e-3,
        batch_size: int = 32,
    ) -> list[float]:
        if not plans:
            raise ValueError("empty training corpus")
        x = np.stack([self._serialize(p) for p in plans])
        params = self.encoder.parameters() + self.decoder.parameters()
        opt = Adam(lr=lr)
        losses: list[float] = []
        n = x.shape[0]
        for _ in range(epochs):
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                z = self.encoder.forward(x[idx], training=True)
                recon = self.decoder.forward(z, training=True)
                diff = recon - x[idx]
                loss = float((diff**2).mean())
                grad = 2.0 * diff / max(diff.size, 1)
                grad_z = self.decoder.backward(grad)
                self.encoder.backward(grad_z)
                opt.step(params, self.encoder.gradients() + self.decoder.gradients())
                total += loss
                batches += 1
            losses.append(total / max(batches, 1))
        self._trained = True
        return losses

    # -- inference -------------------------------------------------------------------

    def embed(self, plan: Plan) -> np.ndarray:
        if not self._trained:
            raise RuntimeError("embed called before fit")
        x = self._serialize(plan)[None, :]
        return self.encoder.forward(x, training=False)[0]

    def embed_batch(self, plans: list[Plan]) -> np.ndarray:
        if not plans:
            return np.zeros((0, self.latent_dim))
        return np.stack([self.embed(p) for p in plans])

    def reconstruction_error(self, plan: Plan) -> float:
        """MSE of reconstructing the plan -- an OOD score for plans unlike
        anything seen in training (usable as a coarse risk signal)."""
        if not self._trained:
            raise RuntimeError("reconstruction_error called before fit")
        x = self._serialize(plan)[None, :]
        z = self.encoder.forward(x, training=False)
        recon = self.decoder.forward(z, training=False)
        return float(((recon - x) ** 2).mean())
