"""Plan featurization shared by learned cost models and risk models.

Three representations:

- **tree arrays** (:func:`plan_to_tree_arrays`): per-node feature vectors
  plus left/right child indices, consumed by tree-convolution and
  tree-recurrent models;
- **flat vectors** (:meth:`PlanFeaturizer.flat`): operator counts +
  cardinality aggregates for linear/GBDT models;
- **transferable vectors** (:meth:`PlanFeaturizer.transferable_node`):
  per-node features that avoid table identity entirely (zero-shot cost
  models [16] train on one database and predict on another).

Node features use the *optimizer's estimated* cardinalities (what a
deployed model would see at plan time), obtained from any
:class:`repro.core.CardinalityEstimator`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.interfaces import CardinalityEstimator
from repro.engine.plans import JoinMethod, JoinNode, Plan, PlanNode, ScanMethod, ScanNode
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.storage.catalog import Database

__all__ = ["PlanFeaturizer", "plan_to_tree_arrays"]

_OPS = [
    ("seq", ScanMethod.SEQ),
    ("index", ScanMethod.INDEX),
    ("hash", JoinMethod.HASH),
    ("nlj", JoinMethod.NESTED_LOOP),
    ("merge", JoinMethod.MERGE),
]


class PlanFeaturizer:
    """Featurizes plans against one database + estimator."""

    def __init__(
        self,
        db: Database,
        estimator: CardinalityEstimator | None = None,
    ) -> None:
        self.db = db
        self.estimator = (
            estimator
            if estimator is not None
            else TraditionalCardinalityEstimator(db)
        )
        self.tables = list(db.table_names)
        self._table_pos = {t: i for i, t in enumerate(self.tables)}
        self._log_total = math.log1p(max(db.total_rows(), 1))

    # -- per-node -----------------------------------------------------------------

    @property
    def node_dim(self) -> int:
        return len(_OPS) + len(self.tables) + 3

    def _op_onehot(self, node: PlanNode) -> np.ndarray:
        onehot = np.zeros(len(_OPS))
        method = node.method  # type: ignore[attr-defined]
        for i, (_, m) in enumerate(_OPS):
            if m is method:
                onehot[i] = 1.0
        return onehot

    def node_features(self, plan: Plan, node: PlanNode) -> np.ndarray:
        est_card = max(self.estimator.estimate(plan.node_subquery(node)), 0.0)
        table_onehot = np.zeros(len(self.tables))
        n_preds = 0.0
        if isinstance(node, ScanNode):
            table_onehot[self._table_pos[node.table]] = 1.0
            n_preds = len(node.predicates) / 4.0
        extra = np.array(
            [
                math.log1p(est_card) / self._log_total,
                len(node.tables) / max(len(self.tables), 1),
                n_preds,
            ]
        )
        return np.concatenate([self._op_onehot(node), table_onehot, extra])

    @property
    def transferable_dim(self) -> int:
        return len(_OPS) + 4

    def transferable_node(self, plan: Plan, node: PlanNode) -> np.ndarray:
        """Database-agnostic node features (zero-shot style [16])."""
        est_card = max(self.estimator.estimate(plan.node_subquery(node)), 0.0)
        if isinstance(node, ScanNode):
            base = self.db.table(node.table).n_rows
            in_card = float(base)
            n_preds = len(node.predicates) / 4.0
        else:
            assert isinstance(node, JoinNode)
            left = max(self.estimator.estimate(plan.node_subquery(node.left)), 0.0)
            right = max(self.estimator.estimate(plan.node_subquery(node.right)), 0.0)
            in_card = left + right
            n_preds = 0.0
        sel = est_card / max(in_card, 1.0)
        extra = np.array(
            [
                math.log1p(est_card) / 20.0,
                math.log1p(in_card) / 20.0,
                min(sel, 2.0),
                n_preds,
            ]
        )
        return np.concatenate([self._op_onehot(node), extra])

    # -- flat ---------------------------------------------------------------------

    @property
    def flat_dim(self) -> int:
        return len(_OPS) + 5

    def flat(self, plan: Plan) -> np.ndarray:
        counts = np.zeros(len(_OPS))
        log_cards = []
        for node in plan.walk():
            counts += self._op_onehot(node)
            est = max(self.estimator.estimate(plan.node_subquery(node)), 0.0)
            log_cards.append(math.log1p(est))
        log_cards_arr = np.array(log_cards)
        depth = _tree_depth(plan.root)
        extra = np.array(
            [
                log_cards_arr.sum() / 20.0,
                log_cards_arr.max() / 20.0,
                len(plan.query.tables) / max(len(self.tables), 1),
                depth / 8.0,
                len(plan.query.predicates) / 8.0,
            ]
        )
        return np.concatenate([counts, extra])

    def flat_batch(self, plans: list[Plan]) -> np.ndarray:
        return np.stack([self.flat(p) for p in plans])


def _tree_depth(node: PlanNode) -> int:
    if isinstance(node, ScanNode):
        return 1
    assert isinstance(node, JoinNode)
    return 1 + max(_tree_depth(node.left), _tree_depth(node.right))


def plan_to_tree_arrays(
    plan: Plan,
    featurizer: PlanFeaturizer,
    *,
    transferable: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten a plan to ``(features, left, right)`` arrays (pre-order).

    Child index ``-1`` marks leaves, matching
    :class:`repro.ml.treeconv.PlanTreeBatch` expectations.
    """
    features: list[np.ndarray] = []
    left: list[int] = []
    right: list[int] = []

    def visit(node: PlanNode) -> int:
        my_index = len(features)
        if transferable:
            features.append(featurizer.transferable_node(plan, node))
        else:
            features.append(featurizer.node_features(plan, node))
        left.append(-1)
        right.append(-1)
        if isinstance(node, JoinNode):
            left[my_index] = visit(node.left)
            right[my_index] = visit(node.right)
        return my_index

    visit(plan.root)
    return np.stack(features), np.array(left), np.array(right)
