"""Zero-shot cost model (Hilprecht & Binnig [16]).

Trains on plans from *source* databases using only transferable,
database-agnostic per-operator features (operator type, input/output
cardinalities, selectivities -- no table identities), then predicts on a
*target* database it has never seen.  The per-plan prediction sums learned
per-operator costs, mirroring the paper's message-passing-over-operators
formulation reduced to its additive core.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import Plan
from repro.ml.nn import MLP

__all__ = ["ZeroShotCostModel"]


class ZeroShotCostModel:
    """Additive per-operator MLP over transferable features."""

    name = "zeroshot_cost"

    def __init__(
        self,
        hidden: tuple[int, ...] = (48, 48),
        epochs: int = 80,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._net: MLP | None = None
        self._dim: int | None = None

    def _plan_matrix(self, plan: Plan, featurizer: PlanFeaturizer) -> np.ndarray:
        rows = [featurizer.transferable_node(plan, n) for n in plan.walk()]
        return np.stack(rows)

    def fit(
        self,
        training_sets: list[tuple[PlanFeaturizer, list[Plan], np.ndarray]],
        *,
        samples_per_plan: int = 1,
    ) -> "ZeroShotCostModel":
        """Train from one or more (featurizer, plans, latencies) sources.

        Each source corresponds to one database; pooling several sources is
        what gives the zero-shot property.  The model learns per-node costs
        whose *sum* matches log latency; training uses the standard
        trick of regressing the per-plan mean node target.
        """
        del samples_per_plan
        if not training_sets:
            raise ValueError("need at least one training database")
        xs, ys = [], []
        for featurizer, plans, lats in training_sets:
            if len(plans) != len(lats):
                raise ValueError("plans/latencies length mismatch")
            for plan, lat in zip(plans, lats):
                mat = self._plan_matrix(plan, featurizer)
                target = np.log1p(max(float(lat), 0.0)) / mat.shape[0]
                xs.append(mat)
                ys.append(np.full(mat.shape[0], target))
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys)
        self._dim = x.shape[1]
        self._net = MLP(self._dim, self.hidden, 1, seed=self.seed)
        self._net.fit(x, y, epochs=self.epochs, lr=self.lr, val_fraction=0.1)
        return self

    def predict_latency(self, plan: Plan, featurizer: PlanFeaturizer) -> float:
        """Latency on a (possibly unseen) database via its featurizer."""
        if self._net is None:
            raise RuntimeError("predict_latency called before fit")
        mat = self._plan_matrix(plan, featurizer)
        per_node = np.atleast_1d(self._net.predict(mat))
        return float(max(np.expm1(per_node.sum()), 0.0))
