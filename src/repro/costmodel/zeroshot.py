"""Zero-shot cost model (Hilprecht & Binnig [16]).

Trains on plans from *source* databases using only transferable,
database-agnostic per-operator features (operator type, input/output
cardinalities, selectivities -- no table identities), then predicts on a
*target* database it has never seen.  The per-plan prediction sums learned
per-operator costs, mirroring the paper's message-passing-over-operators
formulation reduced to its additive core.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigError
from repro.costmodel.features import PlanFeaturizer
from repro.engine.plans import Plan
from repro.ml.nn import MLP

__all__ = ["ZeroShotCostModel"]


class ZeroShotCostModel:
    """Additive per-operator MLP over transferable features."""

    name = "zeroshot_cost"

    def __init__(
        self,
        hidden: tuple[int, ...] = (48, 48),
        epochs: int = 80,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self._net: MLP | None = None
        self._dim: int | None = None

    def _plan_matrix(self, plan: Plan, featurizer: PlanFeaturizer) -> np.ndarray:
        rows = [featurizer.transferable_node(plan, n) for n in plan.walk()]
        return np.stack(rows)

    @staticmethod
    def _check_dim(mat: np.ndarray, dim: int, featurizer: PlanFeaturizer) -> None:
        if mat.shape[1] != dim:
            raise ConfigError(
                f"transferable-feature dimension mismatch: featurizer "
                f"{type(featurizer).__name__} for database "
                f"{getattr(featurizer.db, 'name', '?')!r} produces "
                f"{mat.shape[1]}-dim node features, but this model was "
                f"trained with dim {dim}; zero-shot transfer requires every "
                f"database's featurizer to share one transferable feature space"
            )

    def fit(
        self,
        training_sets: list[tuple[PlanFeaturizer, list[Plan], np.ndarray]],
        *,
        samples_per_plan: int | None = None,
    ) -> "ZeroShotCostModel":
        """Train from one or more (featurizer, plans, latencies) sources.

        Each source corresponds to one database; pooling several sources is
        what gives the zero-shot property.  The model learns per-node costs
        whose *sum* matches log latency; training uses the standard
        trick of regressing the per-plan mean node target.

        ``samples_per_plan`` caps the node rows each plan contributes:
        large plans are subsampled (deterministically, from this model's
        seed) down to that many rows.  The regression target stays the
        per-node share over the *full* node count, so predictions -- which
        sum over all of a plan's nodes -- are unaffected in expectation.
        ``None`` (the default) keeps every node row.
        """
        if samples_per_plan is not None and samples_per_plan < 1:
            raise ConfigError("samples_per_plan must be >= 1 (or None)")
        if not training_sets:
            raise ValueError("need at least one training database")
        rng = np.random.default_rng((int(self.seed), 0x5A))
        xs, ys = [], []
        dim: int | None = None
        for featurizer, plans, lats in training_sets:
            if len(plans) != len(lats):
                raise ValueError("plans/latencies length mismatch")
            for plan, lat in zip(plans, lats):
                mat = self._plan_matrix(plan, featurizer)
                if dim is None:
                    dim = mat.shape[1]
                else:
                    self._check_dim(mat, dim, featurizer)
                target = np.log1p(max(float(lat), 0.0)) / mat.shape[0]
                if (
                    samples_per_plan is not None
                    and mat.shape[0] > samples_per_plan
                ):
                    keep = np.sort(
                        rng.choice(
                            mat.shape[0], size=samples_per_plan, replace=False
                        )
                    )
                    mat = mat[keep]
                xs.append(mat)
                ys.append(np.full(mat.shape[0], target))
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys)
        self._dim = x.shape[1]
        self._net = MLP(self._dim, self.hidden, 1, seed=self.seed)
        self._net.fit(x, y, epochs=self.epochs, lr=self.lr, val_fraction=0.1)
        return self

    def predict_latency(self, plan: Plan, featurizer: PlanFeaturizer) -> float:
        """Latency on a (possibly unseen) database via its featurizer.

        A featurizer whose transferable dimension differs from the one the
        model was trained with raises a :class:`ConfigError` naming both
        dimensions (instead of an opaque shape error inside the MLP) --
        cross-schema misconfiguration must be diagnosable.
        """
        if self._net is None:
            raise RuntimeError("predict_latency called before fit")
        mat = self._plan_matrix(plan, featurizer)
        assert self._dim is not None
        self._check_dim(mat, self._dim, featurizer)
        per_node = np.atleast_1d(self._net.predict(mat))
        return float(max(np.expm1(per_node.sum()), 0.0))
