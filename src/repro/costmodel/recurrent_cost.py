"""Tree-structured recurrent cost model (Sun & Li [51]).

A Tree-LSTM in spirit, implemented as a tree-GRU-style recursive unit:
each node's hidden state combines its feature vector with its children's
states (``h = tanh(W x + U_l h_l + U_r h_r + b)``); the root state feeds a
linear head predicting log latency.  Gradients are backpropagated through
the recursion per plan (plans are small trees, so per-plan processing is
cheap and keeps the implementation transparent).
"""

from __future__ import annotations

import math

import numpy as np

from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.engine.plans import Plan
from repro.ml.nn import Adam

__all__ = ["TreeRecurrentCostModel"]


class TreeRecurrentCostModel:
    """Recursive bottom-up plan encoder + linear latency head."""

    name = "tree_recurrent_cost"

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        hidden: int = 48,
        epochs: int = 60,
        lr: float = 2e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        rng = np.random.default_rng(seed)
        d = featurizer.node_dim
        s = lambda n: math.sqrt(1.0 / n)  # noqa: E731
        self.wx = rng.normal(0, s(d), (d, hidden))
        self.ul = rng.normal(0, s(hidden), (hidden, hidden))
        self.ur = rng.normal(0, s(hidden), (hidden, hidden))
        self.b = np.zeros(hidden)
        self.wo = rng.normal(0, s(hidden), (hidden, 1))
        self.bo = np.zeros(1)
        self._params = [self.wx, self.ul, self.ur, self.b, self.wo, self.bo]
        self._fitted = False

    # -- recursion ------------------------------------------------------------------

    def _forward_tree(self, feats, left, right):
        """Bottom-up states; returns (states, order) with children-first order."""
        n = feats.shape[0]
        states = np.zeros((n, self.hidden))
        order: list[int] = []

        def visit(i: int) -> None:
            hl = np.zeros(self.hidden)
            hr = np.zeros(self.hidden)
            if left[i] >= 0:
                visit(left[i])
                hl = states[left[i]]
            if right[i] >= 0:
                visit(right[i])
                hr = states[right[i]]
            pre = feats[i] @ self.wx + hl @ self.ul + hr @ self.ur + self.b
            states[i] = np.tanh(pre)
            order.append(i)

        visit(0)
        return states, order

    def _grads_tree(self, feats, left, right, states, d_root):
        """Backprop through the recursion; root is node 0."""
        n = feats.shape[0]
        d_state = np.zeros((n, self.hidden))
        d_state[0] = d_root
        g_wx = np.zeros_like(self.wx)
        g_ul = np.zeros_like(self.ul)
        g_ur = np.zeros_like(self.ur)
        g_b = np.zeros_like(self.b)

        def visit(i: int) -> None:
            d_pre = d_state[i] * (1.0 - states[i] ** 2)
            g_wx[...] += np.outer(feats[i], d_pre)
            g_b[...] += d_pre
            if left[i] >= 0:
                g_ul[...] += np.outer(states[left[i]], d_pre)
                d_state[left[i]] += d_pre @ self.ul.T
                visit(left[i])
            if right[i] >= 0:
                g_ur[...] += np.outer(states[right[i]], d_pre)
                d_state[right[i]] += d_pre @ self.ur.T
                visit(right[i])

        visit(0)
        return g_wx, g_ul, g_ur, g_b

    # -- training ---------------------------------------------------------------------

    def fit(
        self, plans: list[Plan], latencies_ms: np.ndarray
    ) -> "TreeRecurrentCostModel":
        if not plans:
            raise ValueError("empty training corpus")
        trees = [plan_to_tree_arrays(p, self.featurizer) for p in plans]
        y = np.log1p(np.maximum(np.asarray(latencies_ms, dtype=float), 0.0))
        opt = Adam(lr=self.lr)
        rng = np.random.default_rng(1)
        n = len(trees)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for i in order:
                feats, left, right = trees[i]
                states, _ = self._forward_tree(feats, left, right)
                pred = states[0] @ self.wo + self.bo
                err = pred - y[i]
                g_wo = np.outer(states[0], 2.0 * err)
                g_bo = 2.0 * err
                d_root = (2.0 * err) @ self.wo.T
                g_wx, g_ul, g_ur, g_b = self._grads_tree(
                    feats, left, right, states, d_root
                )
                opt.step(self._params, [g_wx, g_ul, g_ur, g_b, g_wo, g_bo])
        self._fitted = True
        return self

    def predict_latency(self, plan: Plan) -> float:
        if not self._fitted:
            raise RuntimeError("predict_latency called before fit")
        feats, left, right = plan_to_tree_arrays(plan, self.featurizer)
        states, _ = self._forward_tree(feats, left, right)
        pred = float((states[0] @ self.wo + self.bo)[0])
        return float(max(np.expm1(pred), 0.0))

    def embed(self, plan: Plan) -> np.ndarray:
        """Root-state plan embedding (Saturn-style downstream feature [34])."""
        feats, left, right = plan_to_tree_arrays(plan, self.featurizer)
        states, _ = self._forward_tree(feats, left, right)
        return states[0].copy()
