"""Champion-vs-challenger evaluation gate.

Lehmann et al.'s core warning is that learned optimizers are deployed on
the strength of *aggregate* benchmarks while regressing badly on
individual queries.  :class:`EvalGate` is the pre-deployment defence: a
retrained challenger is evaluated head-to-head against the current
champion on a **held-out workload** (never the experience data it was
trained on), and only a challenger that is no worse on every guarded
axis is allowed to enter staged deployment -- and then only at SHADOW,
where :class:`~repro.serve.deployment.DeploymentManager` watches it on
live traffic before any promotion.

Guarded axes (each with an explicit threshold):

- **latency quantiles** -- challenger p50/p95 plan latency must stay
  within ``max_p50_ratio`` / ``max_p95_ratio`` of the champion's;
- **estimation accuracy** -- challenger q-error quantile must stay within
  ``max_qerror_ratio`` of the champion's;
- **per-query regressions** -- the fraction of held-out queries where the
  challenger's plan is more than ``regression_margin`` slower than the
  champion's must stay below ``max_regression_rate`` (the tail-latency
  axis aggregate ratios hide).

Everything is recomputed at evaluation time with the deterministic
simulator/executor, so the gate's verdict is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError

__all__ = ["GateReport", "EvalGate"]


@dataclass(frozen=True)
class GateReport:
    """Verdict plus the evidence it was based on."""

    passed: bool
    reasons: tuple[str, ...]  # failure reasons; empty when passed
    champion: dict
    challenger: dict

    def to_dict(self) -> dict:
        return {
            "passed": self.passed,
            "reasons": list(self.reasons),
            "champion": self.champion,
            "challenger": self.challenger,
        }


def _estimator_of(model):
    """The cardinality-estimating surface of a model, if it has one."""
    if hasattr(model, "estimate"):
        return model
    return getattr(model, "estimator", None)


class EvalGate:
    """Head-to-head champion/challenger evaluation on held-out queries.

    Parameters
    ----------
    queries:
        The held-out workload.  Must be disjoint from the experience
        stream for the verdict to mean anything; the lifecycle scenario
        splits its generated workload up front.
    simulator:
        Optional :class:`repro.engine.simulator.ExecutionSimulator`; when
        given, each model must expose ``choose_plan(query)`` and the gate
        measures plan latencies.  When None the latency axes are skipped.
    executor:
        Optional :class:`repro.engine.executor.CardinalityExecutor`; when
        given, models exposing an estimator surface (``estimate`` on the
        model or ``model.estimator``) are scored on q-error against the
        executor's exact cardinalities.  When None the accuracy axis is
        skipped.
    """

    def __init__(
        self,
        queries,
        *,
        simulator=None,
        executor=None,
        max_p50_ratio: float = 1.10,
        max_p95_ratio: float = 1.20,
        max_qerror_ratio: float = 1.25,
        qerror_quantile: float = 0.9,
        max_regression_rate: float = 0.20,
        regression_margin: float = 1.25,
        telemetry=None,
    ) -> None:
        self.queries = list(queries)
        if not self.queries:
            raise ConfigError("eval gate needs a non-empty held-out workload")
        if simulator is None and executor is None:
            raise ConfigError("eval gate needs a simulator or an executor")
        self.simulator = simulator
        self.executor = executor
        self.max_p50_ratio = max_p50_ratio
        self.max_p95_ratio = max_p95_ratio
        self.max_qerror_ratio = max_qerror_ratio
        self.qerror_quantile = qerror_quantile
        self.max_regression_rate = max_regression_rate
        self.regression_margin = regression_margin
        self.telemetry = telemetry
        self.evaluations = 0

    # -- measurement -----------------------------------------------------------

    def _latencies(self, model) -> np.ndarray:
        lats = []
        for q in self.queries:
            plan = model.choose_plan(q).plan
            lats.append(self.simulator.execute(plan).latency_ms)
        return np.array(lats)

    def _qerrors(self, model) -> np.ndarray | None:
        est = _estimator_of(model)
        if est is None:
            return None
        errs = []
        for q in self.queries:
            e = max(float(est.estimate(q)), 1.0)
            t = max(float(self.executor.cardinality(q)), 1.0)
            errs.append(max(e / t, t / e))
        return np.array(errs)

    def _metrics(self, model) -> tuple[dict, np.ndarray | None]:
        metrics: dict = {"n_queries": len(self.queries)}
        lats = None
        if self.simulator is not None:
            lats = self._latencies(model)
            metrics["p50_latency_ms"] = round(float(np.percentile(lats, 50)), 6)
            metrics["p95_latency_ms"] = round(float(np.percentile(lats, 95)), 6)
        if self.executor is not None:
            qerrs = self._qerrors(model)
            if qerrs is not None:
                metrics["qerror_q"] = round(
                    float(np.quantile(qerrs, self.qerror_quantile)), 6
                )
                metrics["qerror_max"] = round(float(qerrs.max()), 6)
        return metrics, lats

    # -- verdict ---------------------------------------------------------------

    def evaluate(self, champion, challenger) -> GateReport:
        """Compare the two models; the challenger passes only if it stays
        within every configured ratio of the champion."""
        champ_metrics, champ_lats = self._metrics(champion)
        chall_metrics, chall_lats = self._metrics(challenger)
        reasons: list[str] = []

        def ratio_check(key: str, limit: float, label: str) -> None:
            a, b = champ_metrics.get(key), chall_metrics.get(key)
            if a is None or b is None:
                return
            ratio = b / max(a, 1e-9)
            if ratio > limit:
                reasons.append(f"{label} ratio {ratio:.3f} > {limit:g}")

        ratio_check("p50_latency_ms", self.max_p50_ratio, "p50 latency")
        ratio_check("p95_latency_ms", self.max_p95_ratio, "p95 latency")
        ratio_check("qerror_q", self.max_qerror_ratio, "q-error")
        if champ_lats is not None and chall_lats is not None:
            regressed = chall_lats > champ_lats * self.regression_margin
            rate = float(regressed.mean())
            chall_metrics["regression_rate"] = round(rate, 6)
            if rate > self.max_regression_rate:
                reasons.append(
                    f"regression rate {rate:.3f} > {self.max_regression_rate:g}"
                )
        report = GateReport(
            passed=not reasons,
            reasons=tuple(reasons),
            champion=champ_metrics,
            challenger=chall_metrics,
        )
        self.evaluations += 1
        if self.telemetry is not None:
            self.telemetry.incr(
                "gate.passed" if report.passed else "gate.failed"
            )
            self.telemetry.event(
                "gate_evaluated",
                passed=report.passed,
                reasons=";".join(reasons),
                champion_p50=champ_metrics.get("p50_latency_ms", 0.0),
                challenger_p50=chall_metrics.get("p50_latency_ms", 0.0),
                champion_qerror=champ_metrics.get("qerror_q", 0.0),
                challenger_qerror=chall_metrics.get("qerror_q", 0.0),
            )
        return report
