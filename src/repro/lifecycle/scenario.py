"""The closed-loop lifecycle scenario: drift, detect, retrain, recover.

This is the assembly that proves the lifecycle subsystem closes the
training loop end to end, and the subject of
``benchmarks/bench_p4_lifecycle.py``:

1. a GBDT query-driven estimator is trained on an initial workload and
   deployed LIVE steering the native planner
   (:class:`EstimatorSteeredOptimizer`), registered as the champion;
2. traffic flows through the :class:`~repro.serve.runtime.ServingRuntime`;
   every serve feeds the experience store, the q-error trigger and the
   scheduler's virtual clock (:class:`LifecycleBackend`);
3. halfway through the stream the runtime's deterministic hook mutates
   the database (:func:`repro.bench.workloads.apply_drift`) -- the frozen
   estimator's q-error degrades because its estimates describe data that
   no longer exists;
4. the scheduler's :class:`~repro.lifecycle.scheduler.DriftTrigger` /
   :class:`~repro.lifecycle.scheduler.QErrorTrigger` fire; the champion is
   *cloned* and the clone adapted by a :class:`~repro.cardest.drift.Warper`
   on drift-targeted, exactly-labelled queries;
5. the challenger passes the :class:`~repro.lifecycle.gates.EvalGate`
   against the stale champion on a held-out workload, enters deployment at
   SHADOW, and auto-promotes to LIVE -- becoming the new champion in the
   :class:`~repro.lifecycle.registry.ModelRegistry`.

With ``closed_loop=False`` the identical stream runs with no triggers:
the frozen baseline whose post-drift q-error the benchmark compares
against.  Everything is virtual-time and seeded, so two same-seed runs
export byte-identical registry and telemetry JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.workloads import apply_drift
from repro.cardest.drift import DDUpDetector, Warper
from repro.cardest.querydriven import GBDTQueryEstimator
from repro.core.framework import CandidatePlan
from repro.engine.executor import CardinalityExecutor
from repro.engine.simulator import ExecutionSimulator
from repro.lifecycle.experience import ExperienceStore
from repro.lifecycle.gates import EvalGate
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.scheduler import (
    CadenceTrigger,
    DriftTrigger,
    QErrorTrigger,
    RetrainingScheduler,
    clone_model,
)
from repro.optimizer.planner import Optimizer
from repro.serve.deployment import DeploymentManager, Stage
from repro.serve.runtime import (
    Request,
    RunReport,
    RuntimeConfig,
    ServingRuntime,
    build_schedule,
)
from repro.serve.telemetry import TelemetryBus
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import Query
from repro.storage.catalog import Database
from repro.storage.datasets import make_stats_lite

__all__ = [
    "EstimatorSteeredOptimizer",
    "LifecycleBackend",
    "LifecycleScenario",
    "drift_recovery_scenario",
    "lifecycle_stats",
]


class EstimatorSteeredOptimizer:
    """A learned optimizer that *is* its cardinality model.

    The deployable unit of the lifecycle scenario: the native planner
    steered by a learned (query-driven) estimator.  Retraining this model
    means refitting :attr:`estimator` -- exactly what the Warper does --
    and the model carries no feedback state of its own, so a registered
    version's fingerprint stays stable while it serves
    (:meth:`~repro.lifecycle.registry.ModelRegistry.verify` holds).
    """

    def __init__(
        self, native: Optimizer, estimator, *, name: str = "steered"
    ) -> None:
        self.estimator = estimator
        self.steered = native.with_estimator(estimator)
        self.name = name

    def choose_plan(self, query: Query) -> CandidatePlan:
        return CandidatePlan(plan=self.steered.plan(query), source=self.name)

    def record_feedback(self, query, candidate, latency_ms: float) -> None:
        pass  # the estimator learns via the lifecycle loop, not per-query


class LifecycleBackend:
    """Serving backend that drives the lifecycle on every request.

    Wraps a :class:`~repro.serve.deployment.DeploymentManager`; after each
    serve it feeds the (estimate, true cardinality) pair to the
    scheduler's q-error trigger and advances the scheduler's virtual clock
    by the served latency -- so retraining fires at deterministic stream
    positions.  Exposes the deployment's telemetry/cache surfaces, making
    it a drop-in :class:`~repro.serve.runtime.ServingRuntime` backend.
    """

    def __init__(self, deployment: DeploymentManager, scheduler) -> None:
        self.deployment = deployment
        self.scheduler = scheduler
        self.telemetry = deployment.telemetry

    @property
    def name(self) -> str:
        return self.deployment.name

    def cache_stats(self):
        return self.deployment.cache_stats()

    def serve(self, query: Query):
        decision = self.deployment.serve(query)
        estimator = getattr(self.deployment.learned, "estimator", None)
        if estimator is not None and self.scheduler is not None:
            self.scheduler.observe_qerror(
                float(estimator.estimate(query)), float(decision.cardinality)
            )
        if self.scheduler is not None:
            self.scheduler.step(decision.latency_ms)
        return decision


@dataclass
class LifecycleScenario:
    """The fully-assembled closed loop: run it, then inspect every part."""

    name: str
    db: Database
    native: Optimizer
    simulator: ExecutionSimulator
    executor: CardinalityExecutor
    telemetry: TelemetryBus
    store: ExperienceStore
    registry: ModelRegistry
    detector: DDUpDetector
    gate: EvalGate
    deployment: DeploymentManager
    scheduler: RetrainingScheduler
    runtime: ServingRuntime
    schedule: list[list[Request]]
    holdout: list[Query]
    drift_at: int  # global_seq of the drift hook (-1 when no drift)
    shared: tuple = field(default_factory=tuple)

    def run(self) -> RunReport:
        return self.runtime.run(self.schedule)

    @property
    def n_requests(self) -> int:
        return sum(len(s) for s in self.schedule)

    def holdout_qerror(self, model=None, *, quantile: float = 0.9) -> float:
        """Current q-error quantile of ``model`` (default: the deployed
        model) on the held-out workload against *current* data."""
        model = model if model is not None else self.deployment.learned
        estimator = getattr(model, "estimator", model)
        errs = []
        for q in self.holdout:
            e = max(float(estimator.estimate(q)), 1.0)
            t = max(float(self.executor.cardinality(q)), 1.0)
            errs.append(max(e / t, t / e))
        return float(np.quantile(np.array(errs), quantile))


def lifecycle_stats(scenario: LifecycleScenario) -> dict[str, dict]:
    """The stat block :func:`repro.bench.report.render_lifecycle_stats`
    renders: one dict per lifecycle component."""
    return {
        "scheduler": scenario.scheduler.stats(),
        "registry": scenario.registry.stats(),
        "store": scenario.store.stats(),
    }


def drift_recovery_scenario(
    *,
    scale: float = 0.3,
    seed: int = 0,
    n_queries: int = 240,
    n_sessions: int = 6,
    n_train: int = 120,
    n_holdout: int = 40,
    drift_fraction: float = 0.45,
    closed_loop: bool = True,
    store_capacity: int = 2_000,
    drift_check_every: int = 20,
    qerror_degradation: float = 3.0,
    cadence_queries: int | None = None,
    cooldown_queries: int = 40,
    gate_kwargs: dict | None = None,
    config: RuntimeConfig | None = None,
) -> LifecycleScenario:
    """Assemble the drift-then-recover closed loop described above.

    ``closed_loop=False`` builds the *frozen baseline*: the identical
    stack and stream but with no retraining triggers, so the champion
    stays stale after the drift -- the control arm of the benchmark.
    """
    db = make_stats_lite(scale=scale, seed=seed)
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    executor = CardinalityExecutor(db)
    telemetry = TelemetryBus()
    # Infrastructure every model version points at but never owns: shared
    # across clones and excluded from registry fingerprints.
    shared = (db, native, simulator, executor, native.stats, native.cache)

    # -- initial training ----------------------------------------------------
    gen = WorkloadGenerator(db, seed=seed + 1)
    train_queries = gen.workload(n_train, 1, 3, require_predicate=True)
    train_cards = np.array(
        [float(executor.cardinality(q)) for q in train_queries]
    )
    estimator = GBDTQueryEstimator(db, seed=seed).fit(train_queries, train_cards)
    champion = EstimatorSteeredOptimizer(native, estimator, name="steered-gbdt")

    # -- lifecycle components ------------------------------------------------
    store = ExperienceStore(store_capacity, seed=seed)
    registry = ModelRegistry(shared=shared, telemetry=telemetry)
    v0 = registry.register(champion, trigger="initial", snapshot_id=store.snapshot_id())
    detector = DDUpDetector(db, seed=seed, telemetry=telemetry)
    holdout = WorkloadGenerator(db, seed=seed + 2).workload(
        n_holdout, 1, 3, require_predicate=True
    )
    gate_params = dict(
        max_p50_ratio=1.15,
        max_p95_ratio=1.30,
        max_qerror_ratio=1.25,
        max_regression_rate=0.25,
    )
    gate_params.update(gate_kwargs or {})
    gate = EvalGate(
        holdout,
        simulator=simulator,
        executor=executor,
        telemetry=telemetry,
        **gate_params,
    )
    deployment = DeploymentManager(
        champion,
        native,
        simulator,
        telemetry=telemetry,
        stage=Stage.LIVE,
        canary_fraction=0.5,
        window=12,
        min_samples=6,
        regression_threshold=5.0,
        auto_promote=True,
        experience=store,
        registry=registry,
        model_version=v0.version_id,
    )
    registry.record_stage(v0.version_id, "live", reason="initial")

    history = list(zip(train_queries, train_cards.tolist()))

    def retrainer(current, exp_store, action: str):
        challenger = clone_model(current, shared=shared)
        warper = Warper(
            db,
            challenger.estimator,
            detector=detector,
            queries_per_table=40,
            keep_old=len(history),
            seed=seed + 3,
            telemetry=telemetry,
            experience=exp_store,
            history=history,
        )
        warper.adapt()
        return challenger

    triggers: list = []
    if closed_loop:
        triggers.append(
            DriftTrigger(detector, check_every=drift_check_every, store=store)
        )
        triggers.append(
            QErrorTrigger(
                degradation=qerror_degradation, window=48, min_samples=24, quantile=0.9
            )
        )
        if cadence_queries is not None:
            triggers.append(CadenceTrigger(every_queries=cadence_queries))
    scheduler = RetrainingScheduler(
        registry,
        store,
        retrainer,
        triggers=triggers,
        gate=gate,
        deployment=deployment,
        telemetry=telemetry,
        cooldown_queries=cooldown_queries,
    )

    # -- scheduled workload with the mid-stream drift hook -------------------
    queries = WorkloadGenerator(db, seed=seed + 4).workload(
        n_queries, 1, 3, require_predicate=True
    )
    schedule = build_schedule(queries, n_sessions, seed=seed)
    backend = LifecycleBackend(deployment, scheduler)
    drift_at = sum(len(s) for s in schedule) // 2

    def _drift() -> None:
        apply_drift(db, fraction=drift_fraction, seed=seed)
        native.stats.refresh(db)
        native.cache.clear()
        executor.clear_cache()
        telemetry.event("data_drift", at_request=drift_at, fraction=drift_fraction)

    runtime = ServingRuntime(backend, config=config, hooks={drift_at: _drift})
    return LifecycleScenario(
        name="drift_recovery" if closed_loop else "drift_frozen",
        db=db,
        native=native,
        simulator=simulator,
        executor=executor,
        telemetry=telemetry,
        store=store,
        registry=registry,
        detector=detector,
        gate=gate,
        deployment=deployment,
        scheduler=scheduler,
        runtime=runtime,
        schedule=schedule,
        holdout=holdout,
        drift_at=drift_at,
        shared=shared,
    )
