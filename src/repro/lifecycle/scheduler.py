"""Continuous-retraining scheduler: triggers, clone-then-retrain, gating.

The tutorial's maintenance story (§2.2.2) is that learned components decay
-- data drifts (DDUp), workloads shift (Warper), and accuracy erodes -- so
a production deployment needs a *policy* for when and how to retrain.
:class:`RetrainingScheduler` is that policy, composed from three trigger
families and run entirely on **virtual time** (queries served + simulated
latency), so two same-seed runs fire at identical points:

- :class:`DriftTrigger` -- periodically runs a
  :class:`~repro.cardest.drift.DDUpDetector` check; its ``fine_tune`` /
  ``retrain`` triage (DDUp's detect/distill/update) picks the retraining
  *action*.
- :class:`QErrorTrigger` -- a rolling window of observed q-errors
  (estimate vs. post-execution true cardinality); fires when the window
  quantile degrades past a threshold.  Pure accuracy watchdog: catches
  decay the drift detector's table statistics miss.
- :class:`CadenceTrigger` -- fixed every-N-queries / every-T-virtual-ms
  fallback, the "retrain nightly regardless" policy.

When any trigger fires (outside the cooldown), the scheduler **clones the
champion** (:func:`clone_model` -- the live model is never mutated),
retrains the clone through the injected ``retrainer`` on the experience
store's data, registers the challenger in the
:class:`~repro.lifecycle.registry.ModelRegistry` with full lineage, and
hands it to the :class:`~repro.lifecycle.gates.EvalGate`.  Only a passing
challenger reaches the :class:`~repro.serve.deployment.DeploymentManager`
-- and always at SHADOW, never straight to LIVE.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError

__all__ = [
    "TriggerDecision",
    "CadenceTrigger",
    "QErrorTrigger",
    "DriftTrigger",
    "RetrainOutcome",
    "RetrainingScheduler",
    "clone_model",
    "default_retrainer",
]


def clone_model(model, *, shared=()):
    """Deep-copy ``model`` while *sharing* the infrastructure in ``shared``.

    The memo is pre-seeded so the database, native optimizer, simulator
    etc. are referenced, not duplicated -- both because copying a database
    is wasteful and because infrastructure may hold uncopyable state
    (locks).  The returned clone is safe to retrain without touching the
    champion.
    """
    memo = {id(o): o for o in shared}
    return copy.deepcopy(model, memo)


@dataclass(frozen=True)
class TriggerDecision:
    """One trigger's verdict at a scheduler step."""

    fired: bool
    reason: str  # e.g. "drift:orders", "qerror_p90=41.2", "cadence"
    action: str = "retrain"  # "fine_tune" | "retrain"


class CadenceTrigger:
    """Fires every ``every_queries`` served or ``every_ms`` virtual time."""

    name = "cadence"

    def __init__(
        self, *, every_queries: int | None = None, every_ms: float | None = None
    ) -> None:
        if every_queries is None and every_ms is None:
            raise ConfigError("cadence trigger needs every_queries or every_ms")
        self.every_queries = every_queries
        self.every_ms = every_ms
        self._last_queries = 0
        self._last_ms = 0.0

    def observe(self, estimate: float, truth: float) -> None:  # uniform surface
        pass

    def check(self, ctx: "SchedulerContext") -> TriggerDecision:
        if (
            self.every_queries is not None
            and ctx.queries - self._last_queries >= self.every_queries
        ):
            self._last_queries = ctx.queries
            self._last_ms = ctx.virtual_ms
            return TriggerDecision(True, f"cadence:{self.every_queries}q", "fine_tune")
        if self.every_ms is not None and ctx.virtual_ms - self._last_ms >= self.every_ms:
            self._last_queries = ctx.queries
            self._last_ms = ctx.virtual_ms
            return TriggerDecision(True, f"cadence:{self.every_ms}ms", "fine_tune")
        return TriggerDecision(False, "cadence:idle")

    def reset(self, ctx: "SchedulerContext") -> None:
        """Re-arm after any retraining (cadence counts from the last one)."""
        self._last_queries = ctx.queries
        self._last_ms = ctx.virtual_ms


class QErrorTrigger:
    """Fires when the rolling q-error quantile *degrades* relative to the
    model's own baseline.

    Absolute q-error is a property of the workload as much as of the
    model (join-heavy queries are simply harder), so a fixed threshold
    either never fires or fires on day one.  The trigger instead captures
    a **baseline**: the window quantile the first time the window fills
    after (re)deployment.  It fires when the current quantile exceeds
    ``baseline * degradation`` -- i.e. the model got materially worse than
    *itself* -- or, optionally, an absolute ``ceiling``.
    """

    name = "qerror"

    def __init__(
        self,
        *,
        degradation: float = 3.0,
        ceiling: float | None = None,
        window: int = 64,
        min_samples: int = 32,
        quantile: float = 0.9,
    ) -> None:
        if degradation <= 1.0:
            raise ConfigError("q-error degradation factor must be > 1")
        self.degradation = degradation
        self.ceiling = ceiling
        self.window = window
        self.min_samples = min_samples
        self.quantile = quantile
        self._errors: list[float] = []
        self.baseline: float | None = None

    def observe(self, estimate: float, truth: float) -> None:
        e = max(estimate, 1.0)
        t = max(truth, 1.0)
        self._errors.append(max(e / t, t / e))
        if len(self._errors) > self.window:
            del self._errors[: len(self._errors) - self.window]

    def current(self) -> float:
        if not self._errors:
            return 1.0
        return float(np.quantile(np.array(self._errors), self.quantile))

    def check(self, ctx: "SchedulerContext") -> TriggerDecision:
        if len(self._errors) < self.min_samples:
            return TriggerDecision(False, "qerror:warming")
        q = self.current()
        if self.baseline is None:
            self.baseline = q  # the model's own healthy level
            return TriggerDecision(False, f"qerror_baseline={q:.1f}")
        if q >= self.baseline * self.degradation or (
            self.ceiling is not None and q >= self.ceiling
        ):
            return TriggerDecision(
                True,
                f"qerror_q{self.quantile:g}={q:.1f}(base={self.baseline:.1f})",
                "retrain",
            )
        return TriggerDecision(False, f"qerror_q{self.quantile:g}={q:.1f}")

    def reset(self, ctx: "SchedulerContext") -> None:
        """Clear window and baseline: the new model earns its own record."""
        self._errors.clear()
        self.baseline = None


class DriftTrigger:
    """Runs a DDUp drift check every ``check_every`` queries.

    The detector's triage picks the action: any table scoring ``retrain``
    escalates the whole decision to a full retrain, otherwise the drift is
    handled with a fine-tune.  On detection the experience ``store`` (when
    given) is drift-tagged so subsequently ingested records carry the flag.
    """

    name = "drift"

    def __init__(self, detector, *, check_every: int = 100, store=None) -> None:
        self.detector = detector
        self.check_every = check_every
        self.store = store
        self._last_check = 0
        self.detections = 0

    def observe(self, estimate: float, truth: float) -> None:
        pass

    def check(self, ctx: "SchedulerContext") -> TriggerDecision:
        if ctx.queries - self._last_check < self.check_every:
            return TriggerDecision(False, "drift:idle")
        self._last_check = ctx.queries
        reports = self.detector.check()
        drifted = [r for r in reports if r.drifted]
        if not drifted:
            return TriggerDecision(False, "drift:clean")
        self.detections += 1
        if self.store is not None:
            self.store.mark_drift(True)
        action = (
            "retrain" if any(r.action == "retrain" for r in drifted) else "fine_tune"
        )
        tables = ",".join(sorted(r.table for r in drifted))
        return TriggerDecision(True, f"drift:{tables}", action)

    def reset(self, ctx: "SchedulerContext") -> None:
        self._last_check = ctx.queries


@dataclass
class SchedulerContext:
    """Virtual clock shared with the triggers."""

    queries: int = 0
    virtual_ms: float = 0.0


@dataclass(frozen=True)
class RetrainOutcome:
    """Result of one retraining attempt (returned by :meth:`step`)."""

    version_id: str
    parent: str | None
    trigger: str
    action: str  # "fine_tune" | "retrain"
    gate_passed: bool
    deployed: bool
    at_query: int


def default_retrainer(*, shared=()):
    """A retrainer that clones the champion and calls its own
    :class:`~repro.core.interfaces.Retrainable` surface.

    Returned callable signature: ``retrainer(champion, store, action) ->
    challenger``.  ``fine_tune`` uses the model's ``fine_tune()`` when it
    has one and falls back to ``retrain()`` otherwise -- the protocol-level
    contract from :mod:`repro.core.interfaces`.
    """

    def retrain(champion, store, action: str):
        challenger = clone_model(champion, shared=shared)
        if action == "fine_tune" and hasattr(challenger, "fine_tune"):
            challenger.fine_tune()
        else:
            challenger.retrain()
        return challenger

    return retrain


class RetrainingScheduler:
    """Composes triggers into a clone-retrain-gate-deploy policy.

    Parameters
    ----------
    registry, store:
        The :class:`~repro.lifecycle.registry.ModelRegistry` holding the
        champion lineage and the
        :class:`~repro.lifecycle.experience.ExperienceStore` providing
        training data.  The registry must have a champion before
        :meth:`step` can retrain.
    retrainer:
        ``retrainer(champion_model, store, action) -> challenger`` --
        MUST NOT mutate the champion (the registry's immutability check
        will catch it if it does).  See :func:`default_retrainer`.
    triggers:
        Any mix of :class:`DriftTrigger`, :class:`QErrorTrigger`,
        :class:`CadenceTrigger` (or anything with
        ``observe``/``check``/``reset``).  A step retrains when *any*
        trigger fires; the action escalates to ``retrain`` if any firing
        trigger asks for it.
    gate:
        Optional :class:`~repro.lifecycle.gates.EvalGate`.  Without one
        every challenger passes (useful in unit tests only).
    deployment:
        Optional :class:`~repro.serve.deployment.DeploymentManager`; a
        gate-passing challenger enters it at SHADOW via
        :meth:`~repro.serve.deployment.DeploymentManager.deploy`.  A
        failing challenger is registered (lineage keeps the failure) but
        never deployed.
    cooldown_queries:
        Minimum queries between retrainings, preventing trigger thrash.
    """

    def __init__(
        self,
        registry,
        store,
        retrainer,
        *,
        triggers=(),
        gate=None,
        deployment=None,
        telemetry=None,
        cooldown_queries: int = 50,
    ) -> None:
        self.registry = registry
        self.store = store
        self.retrainer = retrainer
        self.triggers = list(triggers)
        self.gate = gate
        self.deployment = deployment
        self.telemetry = telemetry
        self.cooldown_queries = cooldown_queries
        self.ctx = SchedulerContext()
        self._last_retrain_at: int | None = None
        self.outcomes: list[RetrainOutcome] = []
        self.retrains = 0
        self.gate_failures = 0
        self.deploys = 0

    # -- observations ----------------------------------------------------------

    def observe_qerror(self, estimate: float, truth: float) -> None:
        """Feed a per-query (estimate, true cardinality) pair to triggers."""
        for t in self.triggers:
            t.observe(estimate, truth)

    # -- stepping --------------------------------------------------------------

    def step(self, latency_ms: float = 0.0, queries: int = 1) -> RetrainOutcome | None:
        """Advance virtual time and retrain when a trigger fires.

        Returns the :class:`RetrainOutcome` when a retraining happened,
        else None.
        """
        self.ctx.queries += queries
        self.ctx.virtual_ms += latency_ms
        if (
            self._last_retrain_at is not None
            and self.ctx.queries - self._last_retrain_at < self.cooldown_queries
        ):
            return None
        decisions = [t.check(self.ctx) for t in self.triggers]
        fired = [d for d in decisions if d.fired]
        if not fired:
            return None
        action = "retrain" if any(d.action == "retrain" for d in fired) else "fine_tune"
        reason = "+".join(d.reason for d in fired)
        return self._retrain(action=action, reason=reason)

    def _retrain(self, *, action: str, reason: str) -> RetrainOutcome:
        # Retrain from the model actually deployed (it may still be mid
        # promotion and not yet the registry champion); fall back to the
        # registry champion when the deployment is version-agnostic.
        parent = None
        if self.deployment is not None:
            parent = getattr(self.deployment, "model_version", None)
        if parent is None:
            parent = self.registry.champion_id
        if parent is None:
            raise ConfigError("scheduler cannot retrain without a champion")
        champion = self.registry.model(parent)
        snapshot = self.store.snapshot_id()
        if self.telemetry is not None:
            self.telemetry.incr("lifecycle.retrains")
            self.telemetry.incr(f"lifecycle.action.{action}")
            self.telemetry.event(
                "retrain_started",
                parent=parent,
                action=action,
                reason=reason,
                at_query=self.ctx.queries,
                snapshot=snapshot,
            )
        challenger = self.retrainer(champion, self.store, action)
        if challenger is champion:
            raise ConfigError("retrainer returned the champion itself, not a clone")
        version = self.registry.register(
            challenger,
            parent=parent,
            trigger=f"{action}:{reason}",
            snapshot_id=snapshot,
            created_at_ms=self.ctx.virtual_ms,
        )
        gate_passed = True
        if self.gate is not None:
            report = self.gate.evaluate(champion, challenger)
            gate_passed = report.passed
            self.registry.record_gate(version.version_id, report)
        deployed = False
        if gate_passed:
            if self.deployment is not None:
                self.deployment.deploy(
                    challenger,
                    version=version.version_id,
                    reason=f"gate_passed:{reason}",
                )
                deployed = True
                self.deploys += 1
        else:
            self.gate_failures += 1
        self.retrains += 1
        self._last_retrain_at = self.ctx.queries
        self.store.mark_drift(False)  # drift episode handled
        for t in self.triggers:
            t.reset(self.ctx)
        outcome = RetrainOutcome(
            version_id=version.version_id,
            parent=parent,
            trigger=reason,
            action=action,
            gate_passed=gate_passed,
            deployed=deployed,
            at_query=self.ctx.queries,
        )
        self.outcomes.append(outcome)
        if self.telemetry is not None:
            self.telemetry.incr(
                "lifecycle.gate_passed" if gate_passed else "lifecycle.gate_failed"
            )
            self.telemetry.event(
                "retrain_finished",
                version=version.version_id,
                parent=parent,
                action=action,
                gate_passed=gate_passed,
                deployed=deployed,
                at_query=self.ctx.queries,
            )
        return outcome

    def force_retrain(self, *, reason: str = "manual", action: str = "retrain"):
        """Bypass triggers and cooldown (operational escape hatch)."""
        return self._retrain(action=action, reason=reason)

    # -- reporting -------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        return {
            "queries": self.ctx.queries,
            "virtual_ms": round(self.ctx.virtual_ms, 3),
            "retrains": self.retrains,
            "gate_failures": self.gate_failures,
            "deploys": self.deploys,
            "drift_detections": sum(
                t.detections for t in self.triggers if isinstance(t, DriftTrigger)
            ),
        }
