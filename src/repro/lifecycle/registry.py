"""Versioned model registry: content-hashed, immutable lineage.

Lehmann et al. ("Is Your Learned Query Optimizer Behaving As You
Expect?") argue that a retrained model is a *new artifact* that must be
re-evaluated before it touches traffic.  :class:`ModelRegistry` is the
bookkeeping that makes that possible:

- every registered model becomes a :class:`ModelVersion` with a
  **content-derived version id** (a digest of the model's parameters via
  :func:`model_fingerprint`, its parent, trigger and training-data
  snapshot), so identical training runs produce identical ids and the
  registry export is byte-stable across same-seed runs;
- versions are **immutable**: the registry remembers each model's
  fingerprint at registration and :meth:`verify` re-fingerprints it on
  demand -- the lifecycle tests use this to prove retraining clones the
  champion instead of mutating it in place;
- **lineage** links every version to its parent, its trigger reason
  (which drift/q-error/cadence policy fired), its experience-store
  snapshot id, its :class:`~repro.lifecycle.gates.GateReport` metrics and
  its deployment stage history (recorded back by
  :meth:`repro.serve.deployment.DeploymentManager.deploy` / promote /
  rollback);
- :meth:`to_json` exports the whole registry deterministically (the
  artifact the ``lifecycle-smoke`` CI job diffs across two runs).

Nothing wall-clock enters the registry: ``created_at_ms`` is the
scheduler's *virtual* time, and ordering is by registration sequence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError

__all__ = ["ModelVersion", "ModelRegistry", "model_fingerprint"]

#: object-graph walk bounds; generous for every model in the repo while
#: keeping a pathological cycle-free but huge graph from stalling.
_MAX_NODES = 200_000
_MAX_DEPTH = 16


def _walk(obj, h, seen: set[int], budget: list[int], depth: int, skip: dict) -> None:
    if budget[0] <= 0 or depth > _MAX_DEPTH:
        h.update(b"~cap")
        return
    budget[0] -= 1
    if id(obj) in skip:
        h.update(b"~shared")
        return
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        h.update(repr(obj).encode())
        return
    if isinstance(obj, float):
        h.update(repr(obj).encode())  # shortest-roundtrip repr; covers nan/inf
        return
    if isinstance(obj, np.ndarray):
        h.update(obj.dtype.str.encode())
        h.update(repr(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
        return
    if isinstance(obj, (np.generic,)):
        h.update(repr(obj).encode())
        return
    if id(obj) in seen:
        h.update(b"~cycle")
        return
    seen.add(id(obj))
    if isinstance(obj, dict):
        h.update(b"{")
        for key in sorted(obj, key=repr):
            h.update(repr(key).encode())
            _walk(obj[key], h, seen, budget, depth + 1, skip)
        h.update(b"}")
    elif isinstance(obj, (list, tuple)):
        h.update(b"[")
        for item in obj:
            _walk(item, h, seen, budget, depth + 1, skip)
        h.update(b"]")
    elif isinstance(obj, (set, frozenset)):
        h.update(b"<")
        for item in sorted(obj, key=repr):
            h.update(repr(item).encode())
        h.update(b">")
    elif hasattr(obj, "__dict__"):
        h.update(type(obj).__name__.encode())
        h.update(b"(")
        for key in sorted(vars(obj)):
            h.update(key.encode())
            _walk(vars(obj)[key], h, seen, budget, depth + 1, skip)
        h.update(b")")
    else:
        # Locks, callables, generators, ...: identity-free marker only.
        h.update(type(obj).__name__.encode())
    seen.discard(id(obj))


def model_fingerprint(model, *, shared=()) -> str:
    """Deterministic 16-hex digest of a model's parameter content.

    Recursively walks the object graph hashing primitives and numpy
    arrays; objects in ``shared`` (the database, the native optimizer,
    the simulator -- infrastructure every version points at but does not
    own) are replaced by a marker so a drifting database does not change
    a frozen model's fingerprint.  Two structurally identical models
    fingerprint identically in any process, which is what makes version
    ids content-derived rather than wall-clock-derived.
    """
    h = hashlib.sha256()
    _walk(
        model,
        h,
        seen=set(),
        budget=[_MAX_NODES],
        depth=0,
        skip={id(o): o for o in shared},
    )
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class ModelVersion:
    """One immutable registry entry."""

    version_id: str
    seq: int  # registration order (0 = first)
    parent: str | None
    trigger: str  # why this version exists ("initial", "retrain:drift...", ...)
    snapshot_id: str  # experience-store snapshot the training saw
    created_at_ms: float  # scheduler virtual time
    fingerprint: str  # content digest at registration

    def to_dict(self) -> dict:
        return {
            "version_id": self.version_id,
            "seq": self.seq,
            "parent": self.parent,
            "trigger": self.trigger,
            "snapshot_id": self.snapshot_id,
            "created_at_ms": self.created_at_ms,
            "fingerprint": self.fingerprint,
        }


class ModelRegistry:
    """Registry of model versions with lineage, gating and stage history."""

    def __init__(self, *, shared=(), telemetry=None) -> None:
        """``shared`` lists infrastructure objects excluded from
        fingerprints (see :func:`model_fingerprint`); ``telemetry`` is an
        optional bus receiving ``model_registered`` / ``champion_changed``
        events."""
        self.shared = tuple(shared)
        self.telemetry = telemetry
        self._versions: dict[str, ModelVersion] = {}
        self._models: dict[str, object] = {}
        self._order: list[str] = []
        self._gates: dict[str, dict] = {}
        self._stages: dict[str, list[dict]] = {}
        self.champion_id: str | None = None

    # -- registration ---------------------------------------------------------

    def register(
        self,
        model,
        *,
        parent: str | None = None,
        trigger: str = "initial",
        snapshot_id: str = "",
        created_at_ms: float = 0.0,
    ) -> ModelVersion:
        """Freeze ``model`` as a new immutable version and return it."""
        if parent is not None and parent not in self._versions:
            raise ConfigError(f"unknown parent version {parent!r}")
        seq = len(self._order)
        fingerprint = model_fingerprint(model, shared=self.shared)
        version_id = hashlib.sha256(
            f"{fingerprint}|{parent}|{trigger}|{snapshot_id}|{seq}".encode()
        ).hexdigest()[:12]
        version = ModelVersion(
            version_id=version_id,
            seq=seq,
            parent=parent,
            trigger=trigger,
            snapshot_id=snapshot_id,
            created_at_ms=float(created_at_ms),
            fingerprint=fingerprint,
        )
        self._versions[version_id] = version
        self._models[version_id] = model
        self._order.append(version_id)
        self._stages[version_id] = []
        if self.telemetry is not None:
            self.telemetry.incr("registry.versions")
            self.telemetry.event(
                "model_registered",
                version=version_id,
                parent=parent or "",
                trigger=trigger,
                snapshot=snapshot_id,
                seq=seq,
            )
        return version

    # -- lookup ---------------------------------------------------------------

    def version(self, version_id: str) -> ModelVersion:
        try:
            return self._versions[version_id]
        except KeyError:
            raise ConfigError(f"unknown version {version_id!r}") from None

    def model(self, version_id: str):
        self.version(version_id)  # raise uniformly on unknown ids
        return self._models[version_id]

    def versions(self) -> list[ModelVersion]:
        return [self._versions[v] for v in self._order]

    def lineage(self, version_id: str) -> list[ModelVersion]:
        """Ancestry chain root -> ... -> ``version_id``."""
        chain: list[ModelVersion] = []
        cur: str | None = version_id
        while cur is not None:
            v = self.version(cur)
            chain.append(v)
            cur = v.parent
        chain.reverse()
        return chain

    # -- immutability ----------------------------------------------------------

    def verify(self, version_id: str) -> bool:
        """True when the stored model still matches its registration
        fingerprint -- i.e. nobody mutated the frozen artifact."""
        v = self.version(version_id)
        return model_fingerprint(self._models[version_id], shared=self.shared) == (
            v.fingerprint
        )

    # -- champion & lifecycle feedback ----------------------------------------

    @property
    def champion(self) -> ModelVersion | None:
        return self._versions.get(self.champion_id) if self.champion_id else None

    def champion_model(self):
        if self.champion_id is None:
            raise ConfigError("registry has no champion")
        return self._models[self.champion_id]

    def set_champion(self, version_id: str, *, reason: str = "") -> None:
        self.version(version_id)
        previous = self.champion_id
        self.champion_id = version_id
        if self.telemetry is not None and previous != version_id:
            self.telemetry.incr("registry.champion_changes")
            self.telemetry.event(
                "champion_changed",
                version=version_id,
                previous=previous or "",
                reason=reason,
            )

    def record_stage(
        self, version_id: str, stage: str, *, reason: str = "", at_query: int = 0
    ) -> None:
        """Deployment lineage: the manager reports every transition here.

        Reaching ``live`` makes the version the registry champion -- the
        base the next retraining clones from.
        """
        self.version(version_id)
        self._stages[version_id].append(
            {"stage": stage, "reason": reason, "at_query": int(at_query)}
        )
        if stage == "live":
            self.set_champion(version_id, reason=f"promoted_live:{reason}")

    def record_gate(self, version_id: str, report) -> None:
        """Attach an :class:`~repro.lifecycle.gates.GateReport` to a version."""
        self.version(version_id)
        self._gates[version_id] = (
            report.to_dict() if hasattr(report, "to_dict") else dict(report)
        )

    def stage_history(self, version_id: str) -> list[dict]:
        return list(self._stages.get(version_id, []))

    def gate_report(self, version_id: str) -> dict | None:
        return self._gates.get(version_id)

    # -- export ---------------------------------------------------------------

    def stats(self) -> dict[str, float]:
        gates = list(self._gates.values())
        return {
            "versions": len(self._order),
            "gates_recorded": len(gates),
            "gates_passed": sum(1 for g in gates if g.get("passed")),
            "gates_failed": sum(1 for g in gates if not g.get("passed")),
        }

    def snapshot(self) -> dict:
        """Deterministic state dump (registration order)."""
        return {
            "champion": self.champion_id or "",
            "versions": [
                {
                    **self._versions[vid].to_dict(),
                    "stages": self._stages[vid],
                    "gate": self._gates.get(vid),
                }
                for vid in self._order
            ],
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, separators=(",", ":"))

    def __len__(self) -> int:
        return len(self._order)
