"""Model lifecycle: experience store, registry, retraining loop, gates.

The tutorial's deployment story ends where most learned-optimizer papers
stop: the model is trained once and benchmarked.  This package is the
*rest* of the lifecycle -- the machinery that keeps a deployed model
honest as data and workloads drift:

- :mod:`~repro.lifecycle.experience` -- a bounded, seeded
  :class:`ExperienceStore` accumulating execution feedback from the
  offline loop, the serving path and the Warper's drift queries;
- :mod:`~repro.lifecycle.registry` -- a :class:`ModelRegistry` of
  content-hashed immutable :class:`ModelVersion`\\ s with full lineage
  (parent, trigger, training-data snapshot, gate verdicts, deployment
  stage history);
- :mod:`~repro.lifecycle.scheduler` -- a virtual-time
  :class:`RetrainingScheduler` composing drift (DDUp), accuracy
  (rolling q-error) and cadence triggers into a clone-retrain-gate
  policy that never mutates the serving champion;
- :mod:`~repro.lifecycle.gates` -- the :class:`EvalGate` that evaluates
  every challenger head-to-head against the champion on held-out
  queries before it may enter staged deployment (always at SHADOW);
- :mod:`~repro.lifecycle.scenario` -- the assembled closed loop
  (:func:`drift_recovery_scenario`) that drifts the database mid-stream
  and recovers, deterministically per seed;
- :mod:`~repro.lifecycle.fleet` -- that same closed loop run as a
  *fleet* (:func:`transfer_fleet_scenario`): one lifecycle stack per
  generated schema, one schema per shard of the sharded serving fabric,
  drifting and recovering concurrently.
"""

from repro.lifecycle.experience import ExperienceRecord, ExperienceStore
from repro.lifecycle.fleet import (
    SchemaTenant,
    TransferFleet,
    build_fleet_schedule,
    transfer_fleet_scenario,
)
from repro.lifecycle.gates import EvalGate, GateReport
from repro.lifecycle.registry import ModelRegistry, ModelVersion, model_fingerprint
from repro.lifecycle.scenario import (
    EstimatorSteeredOptimizer,
    LifecycleBackend,
    LifecycleScenario,
    drift_recovery_scenario,
    lifecycle_stats,
)
from repro.lifecycle.scheduler import (
    CadenceTrigger,
    DriftTrigger,
    QErrorTrigger,
    RetrainOutcome,
    RetrainingScheduler,
    TriggerDecision,
    clone_model,
    default_retrainer,
)

__all__ = [
    "ExperienceRecord",
    "ExperienceStore",
    "EvalGate",
    "GateReport",
    "ModelRegistry",
    "ModelVersion",
    "model_fingerprint",
    "EstimatorSteeredOptimizer",
    "LifecycleBackend",
    "LifecycleScenario",
    "drift_recovery_scenario",
    "lifecycle_stats",
    "SchemaTenant",
    "TransferFleet",
    "build_fleet_schedule",
    "transfer_fleet_scenario",
    "CadenceTrigger",
    "DriftTrigger",
    "QErrorTrigger",
    "RetrainOutcome",
    "RetrainingScheduler",
    "TriggerDecision",
    "clone_model",
    "default_retrainer",
]
