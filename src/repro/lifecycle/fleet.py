"""Cross-schema transfer fleet: N generated databases, one serving fabric.

The single-database :func:`~repro.lifecycle.scenario.drift_recovery_scenario`
proves the lifecycle closes the loop on *one* schema it was written
against.  This module runs that scenario as a **fleet**: every member of
a :func:`~repro.storage.schemagen.schema_family` gets its own complete
lifecycle stack -- native optimizer, GBDT-steered champion, experience
store, model registry, drift/q-error triggers, eval gate, deployment
manager -- mounted as one shard of the PR 9 sharded serving fabric, with
one tenant per schema pinned to its schema's shard (a schema's queries
are meaningless anywhere else).  Halfway through the global stream every
database drifts; the closed loop must detect, retrain and recover on
*every* schema concurrently, and two same-seed runs must export
byte-identical merged telemetry.

This is the lifecycle subsystem exercised on schemas nobody hand-tuned
it for -- the "as many scenarios as you can imagine" axis from the
roadmap made systematic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bench.workloads import apply_drift
from repro.cardest.drift import DDUpDetector, Warper
from repro.cardest.querydriven import GBDTQueryEstimator
from repro.engine.executor import CardinalityExecutor
from repro.engine.simulator import ExecutionSimulator
from repro.faults.clock import VirtualClock
from repro.faults.resilience import CircuitBreaker
from repro.lifecycle.experience import ExperienceStore
from repro.lifecycle.gates import EvalGate
from repro.lifecycle.registry import ModelRegistry
from repro.lifecycle.scenario import EstimatorSteeredOptimizer, LifecycleBackend
from repro.lifecycle.scheduler import (
    DriftTrigger,
    QErrorTrigger,
    RetrainingScheduler,
    clone_model,
)
from repro.optimizer.planner import Optimizer
from repro.serve.deployment import DeploymentManager, Stage
from repro.serve.fabric.fabric import FabricConfig, FabricRequest, ServingFabric
from repro.serve.fabric.router import ShardRouter
from repro.serve.fabric.shard import ShardRuntime
from repro.serve.fabric.tenants import TenantRegistry, TenantSpec
from repro.serve.runtime import Request, RuntimeConfig
from repro.serve.telemetry import TelemetryBus
from repro.sql.generator import WorkloadGenerator
from repro.sql.query import Query
from repro.storage.catalog import Database
from repro.storage.schemagen import (
    SchemaGenConfig,
    database_fingerprint,
    schema_family,
)

__all__ = [
    "SchemaTenant",
    "TransferFleet",
    "build_fleet_schedule",
    "transfer_fleet_scenario",
]


@dataclass
class SchemaTenant:
    """One schema's complete lifecycle stack, mounted on one shard."""

    tenant_id: str
    db: Database
    fingerprint: str
    native: Optimizer
    simulator: ExecutionSimulator
    executor: CardinalityExecutor
    detector: DDUpDetector
    store: ExperienceStore
    registry: ModelRegistry
    gate: EvalGate
    deployment: DeploymentManager
    scheduler: RetrainingScheduler
    backend: LifecycleBackend
    holdout: list[Query]

    def holdout_qerror(self, *, quantile: float = 0.9) -> float:
        """Deployed model's q-error quantile on held-out queries vs
        *current* (post-drift) data."""
        estimator = getattr(
            self.deployment.learned, "estimator", self.deployment.learned
        )
        errs = []
        for q in self.holdout:
            e = max(float(estimator.estimate(q)), 1.0)
            t = max(float(self.executor.cardinality(q)), 1.0)
            errs.append(max(e / t, t / e))
        return float(np.quantile(np.array(errs), quantile))


@dataclass
class TransferFleet:
    """The assembled fleet: run it, then inspect every schema's loop."""

    name: str
    tenants: list[SchemaTenant]
    fabric: ServingFabric
    schedule: list[FabricRequest]
    drift_at: int  # schedule index where the fleet-wide drift lands
    drift_fraction: float
    seed: int
    closed_loop: bool
    reports: list = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return len(self.schedule)

    def apply_drift(self) -> None:
        """Drift every schema's data and invalidate derived state."""
        for i, tenant in enumerate(self.tenants):
            apply_drift(
                tenant.db, fraction=self.drift_fraction, seed=self.seed + i
            )
            tenant.native.stats.refresh(tenant.db)
            tenant.native.cache.clear()
            tenant.executor.clear_cache()
        self.fabric.telemetry.event(
            "fleet_drift",
            at_request=self.drift_at,
            fraction=self.drift_fraction,
            n_schemas=len(self.tenants),
        )

    def run(self):
        """Drain the schedule with the mid-stream fleet-wide drift.

        The fabric loop is already a deterministic total order, so the
        drift hook is expressed as two :meth:`ServingFabric.run` halves
        around one :meth:`apply_drift` -- same-seed runs stay
        byte-identical.
        """
        first, second = (
            self.schedule[: self.drift_at],
            self.schedule[self.drift_at :],
        )
        report_a = self.fabric.run(first)
        self.apply_drift()
        report_b = self.fabric.run(second)
        self.reports = [report_a, report_b]
        return self.reports

    # -- inspection ----------------------------------------------------------------

    def holdout_qerrors(self, *, quantile: float = 0.9) -> dict[str, float]:
        return {
            t.tenant_id: t.holdout_qerror(quantile=quantile)
            for t in self.tenants
        }

    def retrain_stats(self) -> dict[str, dict]:
        return {t.tenant_id: t.scheduler.stats() for t in self.tenants}

    def fingerprints(self) -> dict[str, str]:
        return {t.tenant_id: t.fingerprint for t in self.tenants}

    def export_json(self, *, include_traces: bool = False) -> str:
        """The fleet-wide merged telemetry export (deterministic bytes)."""
        return self.fabric.export_json(include_traces=include_traces)


def build_fleet_schedule(
    tenant_queries: list[tuple[str, list[Query]]],
    *,
    seed: int = 0,
    mean_interarrival_ms: float = 25.0,
) -> list[FabricRequest]:
    """One global arrival order interleaving each tenant's own stream.

    Unlike :func:`~repro.serve.fabric.build_fabric_schedule`, tenants
    here are *not* interchangeable -- each tenant's queries reference its
    own schema -- so the mix round-robins the given per-tenant streams
    (dropping tenants as they drain) while arrival gaps come from one
    seeded exponential process.  Pure function of its arguments.
    """
    rng = np.random.default_rng((int(seed), 0xF1EE7))
    remaining = [list(qs) for _, qs in tenant_queries]
    total = sum(len(r) for r in remaining)
    gaps = rng.exponential(mean_interarrival_ms, size=total)
    schedule: list[FabricRequest] = []
    now = 0.0
    seqs = [0] * len(tenant_queries)
    g = 0
    while any(remaining):
        for t, (tenant_id, _) in enumerate(tenant_queries):
            if not remaining[t]:
                continue
            query = remaining[t].pop(0)
            now += float(gaps[g])
            g += 1
            schedule.append(
                FabricRequest(
                    tenant_id=tenant_id,
                    request=Request(
                        session_id=t,
                        seq=seqs[t],
                        global_seq=len(schedule),
                        arrival_ms=now,
                        query=query,
                    ),
                )
            )
            seqs[t] += 1
    return schedule


def _schema_stack(
    index: int,
    db: Database,
    *,
    seed: int,
    n_train: int,
    n_holdout: int,
    closed_loop: bool,
    drift_check_every: int,
    qerror_degradation: float,
    cooldown_queries: int,
    shard_config: RuntimeConfig | None,
) -> tuple[SchemaTenant, ShardRuntime]:
    """One schema's lifecycle stack + the shard serving it (mirrors
    :func:`~repro.lifecycle.scenario.drift_recovery_scenario`, minus the
    per-database runtime -- the fabric drives the shard instead)."""
    native = Optimizer(db)
    simulator = ExecutionSimulator(db)
    executor = CardinalityExecutor(db)
    bus = TelemetryBus()
    shared = (db, native, simulator, executor, native.stats, native.cache)

    gen = WorkloadGenerator(db, seed=seed + 1)
    max_tables = min(3, gen.max_component_size)
    train_queries = gen.workload(n_train, 1, max_tables, require_predicate=True)
    train_cards = np.array(
        [float(executor.cardinality(q)) for q in train_queries]
    )
    estimator = GBDTQueryEstimator(db, seed=seed).fit(train_queries, train_cards)
    champion = EstimatorSteeredOptimizer(
        native, estimator, name=f"steered-{db.name}"
    )

    store = ExperienceStore(2_000, seed=seed)
    registry = ModelRegistry(shared=shared, telemetry=bus)
    v0 = registry.register(
        champion, trigger="initial", snapshot_id=store.snapshot_id()
    )
    detector = DDUpDetector(db, seed=seed, telemetry=bus)
    holdout = WorkloadGenerator(db, seed=seed + 2).workload(
        n_holdout, 1, max_tables, require_predicate=True
    )
    gate = EvalGate(
        holdout,
        simulator=simulator,
        executor=executor,
        telemetry=bus,
        max_p50_ratio=1.15,
        max_p95_ratio=1.30,
        max_qerror_ratio=1.25,
        max_regression_rate=0.25,
    )
    deployment = DeploymentManager(
        champion,
        native,
        simulator,
        telemetry=bus,
        stage=Stage.LIVE,
        canary_fraction=0.5,
        window=12,
        min_samples=6,
        regression_threshold=5.0,
        auto_promote=True,
        experience=store,
        registry=registry,
        model_version=v0.version_id,
    )
    registry.record_stage(v0.version_id, "live", reason="initial")

    history = list(zip(train_queries, train_cards.tolist()))

    def retrainer(current, exp_store, action: str):
        challenger = clone_model(current, shared=shared)
        warper = Warper(
            db,
            challenger.estimator,
            detector=detector,
            queries_per_table=30,
            keep_old=len(history),
            seed=seed + 3,
            telemetry=bus,
            experience=exp_store,
            history=history,
        )
        warper.adapt()
        return challenger

    triggers: list = []
    if closed_loop:
        triggers.append(
            DriftTrigger(detector, check_every=drift_check_every, store=store)
        )
        triggers.append(
            QErrorTrigger(
                degradation=qerror_degradation,
                window=32,
                min_samples=16,
                quantile=0.9,
            )
        )
    scheduler = RetrainingScheduler(
        registry,
        store,
        retrainer,
        triggers=triggers,
        gate=gate,
        deployment=deployment,
        telemetry=bus,
        cooldown_queries=cooldown_queries,
    )
    backend = LifecycleBackend(deployment, scheduler)
    clock = VirtualClock()
    breaker = CircuitBreaker(
        failure_threshold=3,
        cooldown_ms=500.0,
        clock=clock,
        name=f"shard{index:02d}",
    )
    shard = ShardRuntime(
        index,
        backend,
        n_workers=1,
        config=shard_config,
        telemetry=bus,
        breaker=breaker,
        clock=clock,
    )
    tenant = SchemaTenant(
        tenant_id=db.name,
        db=db,
        fingerprint=database_fingerprint(db),
        native=native,
        simulator=simulator,
        executor=executor,
        detector=detector,
        store=store,
        registry=registry,
        gate=gate,
        deployment=deployment,
        scheduler=scheduler,
        backend=backend,
        holdout=holdout,
    )
    return tenant, shard


def transfer_fleet_scenario(
    *,
    n_schemas: int = 8,
    seed: int = 0,
    schema_config: SchemaGenConfig | None = None,
    queries_per_tenant: int = 36,
    n_train: int = 40,
    n_holdout: int = 14,
    drift_fraction: float = 0.45,
    drift_check_every: int = 8,
    qerror_degradation: float = 3.0,
    cooldown_queries: int = 12,
    mean_interarrival_ms: float = 25.0,
    closed_loop: bool = True,
    shard_config: RuntimeConfig | None = None,
) -> TransferFleet:
    """Assemble the fleet: one generated schema per tenant per shard.

    ``closed_loop=False`` builds the frozen control fleet -- identical
    schemas, streams and drift, but no retraining triggers -- whose
    post-drift q-error the transfer benchmark compares against.
    """
    if schema_config is None:
        schema_config = SchemaGenConfig(
            n_tables=(3, 5), rows=(150, 450), attr_cols=(1, 2)
        )
    databases = schema_family(n_schemas, seed=seed, config=schema_config)
    config = (
        shard_config
        if shard_config is not None
        else RuntimeConfig(timeout_ms=None, queue_capacity=None, max_in_flight=None)
    )
    tenants: list[SchemaTenant] = []
    shards: list[ShardRuntime] = []
    for i, db in enumerate(databases):
        tenant, shard = _schema_stack(
            i,
            db,
            seed=seed + 10 * i,
            n_train=n_train,
            n_holdout=n_holdout,
            closed_loop=closed_loop,
            drift_check_every=drift_check_every,
            qerror_degradation=qerror_degradation,
            cooldown_queries=cooldown_queries,
            shard_config=config,
        )
        tenants.append(tenant)
        shards.append(shard)
    specs = tuple(
        TenantSpec(tenant_id=t.tenant_id, qos="interactive") for t in tenants
    )
    router = ShardRouter(
        len(shards),
        mode="pinned",
        seed=seed,
        pinned={t.tenant_id: i for i, t in enumerate(tenants)},
    )
    fabric = ServingFabric(
        shards,
        TenantRegistry(specs),
        config=FabricConfig(seed=seed, route_mode="pinned"),
        router=router,
    )
    tenant_queries = []
    for i, t in enumerate(tenants):
        gen = WorkloadGenerator(t.db, seed=seed + 4 + i)
        tenant_queries.append(
            (
                t.tenant_id,
                gen.workload(
                    queries_per_tenant,
                    1,
                    min(3, gen.max_component_size),
                    require_predicate=True,
                ),
            )
        )
    schedule = build_fleet_schedule(
        tenant_queries, seed=seed, mean_interarrival_ms=mean_interarrival_ms
    )
    return TransferFleet(
        name="transfer_fleet" if closed_loop else "transfer_fleet_frozen",
        tenants=tenants,
        fabric=fabric,
        schedule=schedule,
        drift_at=len(schedule) // 2,
        drift_fraction=drift_fraction,
        seed=seed,
        closed_loop=closed_loop,
    )
