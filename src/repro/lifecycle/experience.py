"""Bounded, seeded experience store feeding the retraining loop.

Neo's core observation (Marcus et al., VLDB 2019) is that a learned
optimizer only stays competitive if execution feedback continuously flows
back into training.  :class:`ExperienceStore` is where that feedback
accumulates: the e2e :class:`~repro.e2e.loop.OptimizationLoop` ingests its
:class:`~repro.e2e.loop.EpisodeResult`\\ s, the
:class:`~repro.serve.deployment.DeploymentManager` ingests its
:class:`~repro.serve.deployment.ServeDecision`\\ s, and the
:class:`~repro.cardest.drift.Warper` deposits the drift-targeted training
queries it generated (with their exact labels).

Three properties the lifecycle determinism contract needs:

- **Dedup** -- records are keyed by ``(kind, query_hash)`` using the one
  repository-wide :func:`repro.sql.query.query_hash` scheme; re-observing
  a query updates the record in place (latest outcome wins, ``hits``
  counts repetitions) instead of growing the store.
- **Bounded with reservoir eviction** -- past ``capacity`` unique records,
  a seeded reservoir sample decides which record a newcomer displaces (or
  whether it is dropped), so the retained set is an unbiased sample of
  everything seen and a pure function of ``(stream, seed)``.
- **Drift tagging** -- after the scheduler's drift trigger fires it flips
  :meth:`mark_drift`; records ingested while the tag is set (and all
  Warper-generated queries) carry ``drift=True`` so retraining can weight
  or filter the post-drift region.

:meth:`snapshot_id` is a stable digest of the retained records -- the
"training-data snapshot id" the :class:`~repro.lifecycle.registry.
ModelRegistry` stores in every version's lineage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.sql.query import Query, query_hash

__all__ = ["ExperienceRecord", "ExperienceStore"]


@dataclass
class ExperienceRecord:
    """One retained unit of execution feedback.

    ``kind`` distinguishes the three ingestion paths: ``"episode"``
    (offline loop), ``"serve"`` (deployment decisions) and
    ``"drift_query"`` (Warper-generated, exactly labelled).  ``hits``
    counts how many times the same ``(kind, query)`` was observed; the
    other fields always describe the latest observation.
    """

    key: str  # query_hash of ``query``
    kind: str
    query: Query
    source: str
    latency_ms: float | None
    native_latency_ms: float | None
    true_cardinality: float | None
    drift: bool
    hits: int = 1


class ExperienceStore:
    """Deduplicating, bounded, seeded store of execution feedback."""

    def __init__(self, capacity: int = 5_000, *, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigError("experience store capacity must be >= 1")
        self.capacity = capacity
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._records: dict[tuple[str, str], ExperienceRecord] = {}
        self._slots: list[tuple[str, str]] = []  # reservoir index -> key
        self.drift_tag = False
        self.ingested = 0  # every add_* call
        self.deduped = 0  # calls that updated an existing record
        self.evicted = 0  # records displaced by the reservoir
        self.dropped = 0  # newcomers the reservoir rejected
        self._unique_seen = 0

    # -- ingestion -------------------------------------------------------------

    def mark_drift(self, tag: bool = True) -> None:
        """Set/clear the drift tag applied to subsequently ingested records."""
        self.drift_tag = tag

    def _ingest(
        self,
        kind: str,
        query: Query,
        *,
        source: str,
        latency_ms: float | None,
        native_latency_ms: float | None,
        true_cardinality: float | None,
        drift: bool,
    ) -> None:
        self.ingested += 1
        key = (kind, query_hash(query))
        existing = self._records.get(key)
        if existing is not None:
            self.deduped += 1
            existing.hits += 1
            existing.source = source
            existing.drift = existing.drift or drift
            if latency_ms is not None:
                existing.latency_ms = latency_ms
            if native_latency_ms is not None:
                existing.native_latency_ms = native_latency_ms
            if true_cardinality is not None:
                existing.true_cardinality = true_cardinality
            return
        record = ExperienceRecord(
            key=key[1],
            kind=kind,
            query=query,
            source=source,
            latency_ms=latency_ms,
            native_latency_ms=native_latency_ms,
            true_cardinality=true_cardinality,
            drift=drift,
        )
        self._unique_seen += 1
        if len(self._records) < self.capacity:
            self._records[key] = record
            self._slots.append(key)
            return
        # Reservoir sampling over unique records: keep the newcomer with
        # probability capacity / unique_seen, displacing a uniformly random
        # retained record -- deterministic given the seed and the stream.
        j = int(self._rng.integers(0, self._unique_seen))
        if j >= self.capacity:
            self.dropped += 1
            return
        victim = self._slots[j]
        del self._records[victim]
        self.evicted += 1
        self._records[key] = record
        self._slots[j] = key

    def add_episode(self, episode, *, drift: bool | None = None) -> None:
        """Ingest an :class:`repro.e2e.loop.EpisodeResult`."""
        self._ingest(
            "episode",
            episode.query,
            source=episode.source,
            latency_ms=float(episode.latency_ms),
            native_latency_ms=float(episode.native_latency_ms),
            true_cardinality=None,
            drift=self.drift_tag if drift is None else drift,
        )

    def add_decision(self, decision, *, drift: bool | None = None) -> None:
        """Ingest a :class:`repro.serve.deployment.ServeDecision`."""
        self._ingest(
            "serve",
            decision.query,
            source=decision.plan_source,
            latency_ms=float(decision.latency_ms),
            native_latency_ms=(
                float(decision.native_latency_ms)
                if decision.native_latency_ms is not None
                else None
            ),
            true_cardinality=float(decision.cardinality),
            drift=self.drift_tag if drift is None else drift,
        )

    def add_drift_queries(self, queries, cards=None) -> None:
        """Ingest Warper-generated drift queries (always drift-tagged)."""
        cards = list(cards) if cards is not None else [None] * len(list(queries))
        for query, card in zip(queries, cards):
            self._ingest(
                "drift_query",
                query,
                source="warper",
                latency_ms=None,
                native_latency_ms=None,
                true_cardinality=float(card) if card is not None else None,
                drift=True,
            )

    # -- retrieval -------------------------------------------------------------

    def records(
        self, *, kind: str | None = None, drift: bool | None = None
    ) -> list[ExperienceRecord]:
        """Retained records in insertion order, optionally filtered."""
        out = []
        for r in self._records.values():
            if kind is not None and r.kind != kind:
                continue
            if drift is not None and r.drift != drift:
                continue
            out.append(r)
        return out

    def queries(
        self, *, kind: str | None = None, drift: bool | None = None
    ) -> list[Query]:
        return [r.query for r in self.records(kind=kind, drift=drift)]

    def labelled(self) -> tuple[list[Query], np.ndarray]:
        """(queries, true_cardinalities) over records carrying exact labels."""
        pairs = [
            (r.query, r.true_cardinality)
            for r in self._records.values()
            if r.true_cardinality is not None
        ]
        return [q for q, _ in pairs], np.array([c for _, c in pairs])

    def snapshot_id(self) -> str:
        """Stable 12-hex digest of the retained records (sorted by key)."""
        h = hashlib.sha256()
        for kind, key in sorted(self._records):
            r = self._records[(kind, key)]
            h.update(
                f"{kind}|{key}|{r.hits}|{r.drift}|{r.latency_ms!r}|"
                f"{r.true_cardinality!r}\n".encode()
            )
        return h.hexdigest()[:12]

    def stats(self) -> dict[str, float]:
        """Counters for telemetry gauges and lifecycle reports."""
        return {
            "records": len(self._records),
            "capacity": self.capacity,
            "ingested": self.ingested,
            "deduped": self.deduped,
            "evicted": self.evicted,
            "dropped": self.dropped,
            "drift_records": sum(1 for r in self._records.values() if r.drift),
        }

    def __len__(self) -> int:
        return len(self._records)
