"""Risk models (the second half of the §2.2 framework).

- :class:`TreeConvLatencyModel` -- pointwise latency regression with a
  bootstrap ensemble; Thompson sampling over members gives Bao's
  exploration behaviour [37];
- :class:`PairwisePlanComparator` -- Lero/LEON-style learning-to-rank:
  a tree-conv scorer trained with BCE on same-query plan pairs [79, 4];
- :class:`EnsembleLatencyModel` -- HyperQO's multi-head predictor with a
  variance filter over candidates [72].

All satisfy :class:`repro.core.framework.RiskModel` (``scores`` /
``observe`` / ``retrain``).  Until the first retrain every model falls
back to preferring the candidate whose source is ``"default"`` -- learned
optimizers ship the native plan during warm-up, which is what keeps their
cold-start behaviour safe.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.framework import CandidatePlan
from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.ml.nn import Adam
from repro.ml.treeconv import PlanTreeBatch, TreeConvNet

__all__ = [
    "TreeConvLatencyModel",
    "PairwisePlanComparator",
    "EnsembleLatencyModel",
]


def _default_scores(candidates: Sequence[CandidatePlan]) -> list[float]:
    """Warm-up scoring: the native ('default') candidate wins."""
    return [0.0 if c.source == "default" else 1.0 for c in candidates]


class TreeConvLatencyModel:
    """Pointwise tree-conv latency model with optional Thompson sampling."""

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        n_members: int = 3,
        thompson: bool = True,
        min_observations: int = 20,
        epochs: int = 30,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.thompson = thompson
        self.min_observations = min_observations
        self.epochs = epochs
        self.lr = lr
        self._members = [
            TreeConvNet(
                featurizer.node_dim,
                conv_channels=(32, 32),
                head_hidden=(16,),
                seed=seed + i,
            )
            for i in range(max(n_members, 1))
        ]
        self._rng = np.random.default_rng(seed + 100)
        self._trees: list[tuple] = []
        self._latencies: list[float] = []
        self._trained = False

    @property
    def n_observations(self) -> int:
        return len(self._latencies)

    def observe(self, candidate: CandidatePlan, latency_ms: float) -> None:
        self._trees.append(plan_to_tree_arrays(candidate.plan, self.featurizer))
        self._latencies.append(float(latency_ms))

    def retrain(self) -> None:
        n = len(self._latencies)
        if n < self.min_observations:
            return
        y = np.log1p(np.maximum(np.array(self._latencies), 0.0))
        for i, member in enumerate(self._members):
            # Bootstrap resample per member (Bao's approximate posterior).
            idx = self._rng.integers(0, n, size=n)
            member.fit(
                [self._trees[j] for j in idx],
                y[idx],
                epochs=self.epochs,
                lr=self.lr,
                seed=i,
            )
        self._trained = True

    def predict(self, candidates: Sequence[CandidatePlan]) -> np.ndarray:
        """Mean predicted latency (ms) across ensemble members."""
        trees = [plan_to_tree_arrays(c.plan, self.featurizer) for c in candidates]
        preds = np.stack([m.predict(trees) for m in self._members])
        return np.maximum(np.expm1(preds.mean(axis=0)), 0.0)

    def scores(self, candidates: Sequence[CandidatePlan]) -> list[float]:
        if not self._trained:
            return _default_scores(candidates)
        trees = [plan_to_tree_arrays(c.plan, self.featurizer) for c in candidates]
        if self.thompson:
            member = self._members[self._rng.integers(len(self._members))]
            return list(member.predict(trees))
        preds = np.stack([m.predict(trees) for m in self._members])
        return list(preds.mean(axis=0))


class PairwisePlanComparator:
    """Learning-to-rank plan comparator (Lero [79] / LEON [4]).

    A single tree-conv scorer ``s(plan)``; ``P(a better than b) =
    sigmoid(s(b) - s(a))`` (lower score = faster plan) trained with BCE on
    pairs of executed plans *for the same query*.  Candidate scores are the
    raw ``s`` values -- ranking by ``s`` is equivalent to counting pairwise
    wins under this model.
    """

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        min_pairs: int = 15,
        epochs: int = 40,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.featurizer = featurizer
        self.min_pairs = min_pairs
        self.epochs = epochs
        self.lr = lr
        self.net = TreeConvNet(
            featurizer.node_dim, conv_channels=(32, 32), head_hidden=(16,), seed=seed
        )
        self._rng = np.random.default_rng(seed + 5)
        # query_key -> list of (tree, latency)
        self._by_query: dict[str, list[tuple[tuple, float]]] = {}
        self._trained = False

    def observe(self, candidate: CandidatePlan, latency_ms: float) -> None:
        key = candidate.plan.query.to_sql()
        tree = plan_to_tree_arrays(candidate.plan, self.featurizer)
        self._by_query.setdefault(key, []).append((tree, float(latency_ms)))

    def _pairs(self) -> list[tuple[tuple, tuple, float]]:
        """(tree_a, tree_b, label) with label = 1 when a is faster."""
        pairs = []
        for entries in self._by_query.values():
            for i in range(len(entries)):
                for j in range(i + 1, len(entries)):
                    (ta, la), (tb, lb) = entries[i], entries[j]
                    if abs(la - lb) / max(la, lb, 1e-9) < 0.05:
                        continue  # ties teach nothing
                    pairs.append((ta, tb, 1.0 if la < lb else 0.0))
        return pairs

    @property
    def n_pairs(self) -> int:
        return len(self._pairs())

    def retrain(self) -> None:
        pairs = self._pairs()
        if len(pairs) < self.min_pairs:
            return
        opt = Adam(lr=self.lr)
        n = len(pairs)
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, 16):
                chunk = [pairs[k] for k in order[start : start + 16]]
                trees = []
                labels = []
                for ta, tb, y in chunk:
                    trees.extend([ta, tb])
                    labels.append(y)
                batch = PlanTreeBatch.from_trees(trees)
                scores = self.net.forward(batch)[:, 0]
                diff = scores[1::2] - scores[0::2]  # s(b) - s(a)
                prob = 1.0 / (1.0 + np.exp(-np.clip(diff, -60, 60)))
                y_arr = np.array(labels)
                d_diff = (prob - y_arr) / max(len(chunk), 1)
                grad = np.zeros((len(trees), 1))
                grad[1::2, 0] = d_diff
                grad[0::2, 0] = -d_diff
                self.net._backward(batch, grad)
                opt.step(self.net.parameters(), self.net.gradients())
        self._trained = True

    def scores(self, candidates: Sequence[CandidatePlan]) -> list[float]:
        if not self._trained:
            return _default_scores(candidates)
        trees = [plan_to_tree_arrays(c.plan, self.featurizer) for c in candidates]
        return list(self.net.predict(trees))

    def compare(self, plan_a, plan_b) -> float:
        """P(plan_a faster than plan_b); 0.5 before training."""
        if not self._trained:
            return 0.5
        trees = [
            plan_to_tree_arrays(plan_a, self.featurizer),
            plan_to_tree_arrays(plan_b, self.featurizer),
        ]
        s = self.net.predict(trees)
        return float(1.0 / (1.0 + math.exp(-(s[1] - s[0]))))


class EnsembleLatencyModel:
    """HyperQO-style multi-head predictor with variance filtering [72].

    Scores are mean predicted latency, but candidates whose across-member
    prediction variance exceeds ``variance_quantile`` of the candidate set
    are pushed behind the default plan (treated as too risky to pick).
    """

    def __init__(
        self,
        featurizer: PlanFeaturizer,
        *,
        n_members: int = 4,
        variance_quantile: float = 0.7,
        min_observations: int = 20,
        epochs: int = 30,
        seed: int = 0,
    ) -> None:
        self.inner = TreeConvLatencyModel(
            featurizer,
            n_members=n_members,
            thompson=False,
            min_observations=min_observations,
            epochs=epochs,
            seed=seed,
        )
        self.variance_quantile = variance_quantile

    def observe(self, candidate: CandidatePlan, latency_ms: float) -> None:
        self.inner.observe(candidate, latency_ms)

    def retrain(self) -> None:
        self.inner.retrain()

    def scores(self, candidates: Sequence[CandidatePlan]) -> list[float]:
        if not self.inner._trained:
            return _default_scores(candidates)
        trees = [
            plan_to_tree_arrays(c.plan, self.inner.featurizer) for c in candidates
        ]
        preds = np.stack([m.predict(trees) for m in self.inner._members])
        means = preds.mean(axis=0)
        stds = preds.std(axis=0)
        cutoff = float(np.quantile(stds, self.variance_quantile))
        big = float(means.max()) + 1.0
        out = []
        for i, c in enumerate(candidates):
            if stds[i] > cutoff and c.source != "default":
                out.append(big + float(stds[i]))  # filtered: behind everything
            else:
                out.append(float(means[i]))
        return out
