"""The execute-and-learn loop driving any learned optimizer.

:class:`OptimizationLoop` runs a workload through a learned optimizer
against the execution simulator, feeding latencies back after every query
-- the deployment loop PilotScope's drivers implement, factored out so the
benchmarks, the regression-elimination plugins and the middleware all
share it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.framework import CandidatePlan
from repro.engine.simulator import ExecutionSimulator
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["EpisodeResult", "OptimizationLoop"]


@dataclass(frozen=True)
class EpisodeResult:
    """Outcome of one query through the loop."""

    query: Query
    source: str  # which candidate source won (e.g. hint-set name)
    latency_ms: float
    native_latency_ms: float

    @property
    def speedup(self) -> float:
        """Native / learned latency (>1 means the learned plan won)."""
        return self.native_latency_ms / max(self.latency_ms, 1e-9)

    @property
    def regression(self) -> float:
        """Learned / native latency (>1 means a regression)."""
        return self.latency_ms / max(self.native_latency_ms, 1e-9)


class OptimizationLoop:
    """Drives a learned optimizer with execution feedback.

    ``learned`` must expose ``choose_plan(query)`` and
    ``record_feedback(query, candidate, latency_ms)`` (the
    :class:`repro.core.framework.LearnedOptimizer` surface).
    """

    def __init__(
        self,
        learned,
        simulator: ExecutionSimulator,
        native: Optimizer,
        *,
        guard=None,
        degrade_on_error: bool = True,
        experience=None,
        auditor=None,
    ) -> None:
        """``guard`` optionally wraps plan selection (see
        :mod:`repro.regression`): it is called as
        ``guard(query, candidate, native_plan) -> candidate`` and may swap
        in a safer plan.

        ``degrade_on_error`` (default) keeps the loop alive when the
        learned component or the guard throws: the query is served with
        the native plan (source ``"native:fallback"``) or the guard is
        treated as abstaining, and the failure is counted in
        :attr:`fallbacks` / :attr:`guard_errors`.  Set ``False`` to let
        failures propagate (debugging).

        ``experience`` is an optional
        :class:`repro.lifecycle.ExperienceStore`; every
        :class:`EpisodeResult` is ingested into it, which is how offline
        training loops feed the continuous-retraining pipeline.

        ``auditor`` is an optional :class:`repro.oracle.OnlineAuditor`:
        a deterministic sample of served plans is re-executed literally
        and checked against the exact count (``observe_plan``), so a
        structurally wrong plan surfaces as an audit violation instead of
        passing silently through the simulator."""
        self.learned = learned
        self.simulator = simulator
        self.native = native
        self.guard = guard
        self.degrade_on_error = degrade_on_error
        self.experience = experience
        self.auditor = auditor
        self.results: list[EpisodeResult] = []
        self.fallbacks = 0  # learned failures served natively
        self.guard_errors = 0  # contained guard exceptions

    def run_query(self, query: Query) -> EpisodeResult:
        try:
            candidate = self.learned.choose_plan(query)
        except Exception:
            if not self.degrade_on_error:
                raise
            self.fallbacks += 1
            candidate = None
        native_plan = self.native.plan(query)
        if candidate is None:
            candidate = CandidatePlan(plan=native_plan, source="native:fallback")
        if self.guard is not None:
            try:
                candidate = self.guard(query, candidate, native_plan)
            except Exception:
                if not self.degrade_on_error:
                    raise
                self.guard_errors += 1  # guard abstains, candidate stands
        latency = self.simulator.execute(candidate.plan).latency_ms
        native_latency = self.simulator.execute(native_plan).latency_ms
        if self.auditor is not None:
            self.auditor.observe_plan(query, candidate.plan)
        if candidate.source != "native:fallback":
            self.learned.record_feedback(query, candidate, latency)
        if self.guard is not None and hasattr(self.guard, "record"):
            try:
                self.guard.record(query, candidate, latency, native_latency)
                if hasattr(self.guard, "record_native") and (
                    candidate.plan.signature() != native_plan.signature()
                ):
                    self.guard.record_native(query, native_plan, native_latency)
            except Exception:
                if not self.degrade_on_error:
                    raise
                self.guard_errors += 1  # feedback lost, loop keeps serving
        result = EpisodeResult(
            query=query,
            source=candidate.source,
            latency_ms=latency,
            native_latency_ms=native_latency,
        )
        self.results.append(result)
        if self.experience is not None:
            self.experience.add_episode(result)
        return result

    def run(self, queries: list[Query]) -> list[EpisodeResult]:
        return [self.run_query(q) for q in queries]

    # -- summaries ---------------------------------------------------------------

    def summary(self, tail: int | None = None) -> dict[str, float]:
        """Aggregate workload statistics (optionally over the last ``tail``
        queries, i.e. after warm-up)."""
        results = self.results[-tail:] if tail else self.results
        if not results:
            raise ValueError("loop has not executed any query")
        lat = np.array([r.latency_ms for r in results])
        nat = np.array([r.native_latency_ms for r in results])
        reg = lat / np.maximum(nat, 1e-9)
        return {
            "total_latency_ms": float(lat.sum()),
            "native_total_latency_ms": float(nat.sum()),
            "workload_speedup": float(nat.sum() / max(lat.sum(), 1e-9)),
            "p50_latency_ms": float(np.percentile(lat, 50)),
            "p99_latency_ms": float(np.percentile(lat, 99)),
            "native_p99_latency_ms": float(np.percentile(nat, 99)),
            "n_regressions": int((reg > 1.1).sum()),
            "worst_regression": float(reg.max()),
            "n_queries": len(results),
        }
