"""LEON [4]: ML-aided dynamic programming.

LEON keeps the native optimizer's DP enumeration but lets a learned
pairwise comparison model influence which sub-plans survive: each DP
subset keeps the top-``k`` candidates ranked by a blend of estimated cost
and the comparator's learned preference, and the final plan is the
comparator's favourite among the full-set candidates.  Periodically the
runner-up is executed instead of the favourite to keep generating labelled
pairs (LEON's exploration).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.framework import CandidatePlan, Experience
from repro.costmodel.features import PlanFeaturizer
from repro.e2e.risk_models import PairwisePlanComparator
from repro.engine.plans import Plan, PlanNode
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import (
    Optimizer,
    _best_join,
    _best_scan,
    _join_conditions_between,
)
from repro.sql.query import Query

__all__ = ["LeonOptimizer"]


class LeonOptimizer:
    """DP enumeration with learned pairwise sub-plan ranking."""

    name = "leon"

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        keep_k: int = 2,
        explore_every: int = 7,
        retrain_every: int = 25,
        shadow_executor=None,
        seed: int = 0,
    ) -> None:
        """``shadow_executor(plan) -> latency_ms``, when provided, lets
        LEON execute the DP runner-up out-of-band on explore queries so
        the comparator receives labelled same-query pairs (LEON's
        exploration executions)."""
        self.optimizer = optimizer
        self.keep_k = keep_k
        self.explore_every = explore_every
        self.retrain_every = retrain_every
        self.shadow_executor = shadow_executor
        featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        self.comparator = PairwisePlanComparator(featurizer, seed=seed)
        self.history: list[Experience] = []
        self._queries_seen = 0
        self._since_retrain = 0

    # -- DP with candidate lists ---------------------------------------------------

    def _rank(self, query: Query, entries: list[tuple[PlanNode, float]]):
        """Order candidate (node, cost) entries best-first.

        Without a trained comparator, rank purely by estimated cost; with
        one, rank by the comparator's score over the *completed fragments*
        (treated as plans of their sub-query), breaking ties by cost.
        """
        if not self.comparator._trained or len(entries) == 1:
            return sorted(entries, key=lambda e: e[1])
        plans = [Plan(query.subquery(node.tables), node) for node, _ in entries]
        scores = self.comparator.scores(
            [CandidatePlan(p, "dp") for p in plans]
        )
        order = sorted(range(len(entries)), key=lambda i: (scores[i], entries[i][1]))
        return [entries[i] for i in order]

    def _dp_candidates(self, query: Query) -> list[tuple[PlanNode, float]]:
        hints = HintSet.default()
        coster = self.optimizer.coster
        tables = list(query.tables)
        best: dict[frozenset[str], list[tuple[PlanNode, float]]] = {}
        card_of: dict[frozenset[str], float] = {}
        for t in tables:
            key = frozenset((t,))
            best[key] = [_best_scan(query, t, coster, hints)]
            card_of[key] = coster.subquery_cardinality(query, key)
        n = len(tables)
        for size in range(2, n + 1):
            for combo in combinations(tables, size):
                subset = frozenset(combo)
                sub = query.subquery(subset)
                if not sub.is_connected():
                    continue
                card_of[subset] = coster.subquery_cardinality(query, subset)
                entries: list[tuple[PlanNode, float]] = []
                members = sorted(subset)
                for r in range(1, size):
                    for left_combo in combinations(members[1:], r - 1):
                        left_set = frozenset((members[0],) + left_combo)
                        right_set = subset - left_set
                        if left_set not in best or right_set not in best:
                            continue
                        conditions = _join_conditions_between(
                            query, left_set, right_set
                        )
                        if not conditions:
                            continue
                        for lcand in best[left_set]:
                            for rcand in best[right_set]:
                                cand = _best_join(
                                    query, lcand, rcand, conditions,
                                    coster, hints, card_of,
                                )
                                if cand is not None:
                                    entries.append(cand)
                if entries:
                    # Dedup by signature, keep top-k by learned ranking.
                    seen: set[str] = set()
                    unique = []
                    for node, cost in sorted(entries, key=lambda e: e[1]):
                        sig = node.signature()
                        if sig not in seen:
                            seen.add(sig)
                            unique.append((node, cost))
                    best[subset] = self._rank(query, unique)[: self.keep_k]
        full = frozenset(tables)
        if full not in best:
            raise ValueError(f"no connected plan covers {query}")
        return best[full]

    # -- framework API ----------------------------------------------------------------

    def choose_plan(self, query: Query) -> CandidatePlan:
        self._queries_seen += 1
        if query.n_tables == 1:
            return CandidatePlan(self.optimizer.plan(query), "default")
        entries = self._dp_candidates(query)
        explore = (
            len(entries) > 1
            and self.explore_every
            and self._queries_seen % self.explore_every == 0
        )
        if explore and self.shadow_executor is not None:
            # Shadow-execute the runner-up so a labelled same-query pair
            # exists once the favourite's latency is fed back.
            runner_up = CandidatePlan(Plan(query, entries[1][0]), "shadow")
            self.comparator.observe(
                runner_up, self.shadow_executor(runner_up.plan)
            )
        pick = 1 if (explore and self.shadow_executor is None) else 0
        node, _ = entries[pick]
        source = "dp" if pick == 0 else "explore"
        return CandidatePlan(Plan(query, node), source)

    def record_feedback(
        self, query: Query, candidate: CandidatePlan, latency_ms: float
    ) -> None:
        self.history.append(Experience(query, candidate, latency_ms))
        self.comparator.observe(candidate, latency_ms)
        self._since_retrain += 1
        if self.retrain_every and self._since_retrain >= self.retrain_every:
            self.retrain()

    def retrain(self) -> None:
        self._since_retrain = 0
        self.comparator.retrain()
