"""Balsa [69]: learning a query optimizer *without* expert demonstrations.

Balsa's difference from Neo is the bootstrap: instead of imitating the
native optimizer's executed plans, it first trains its value network in
*simulation* -- against the (cheap, imperfect) cost model -- and only then
fine-tunes on real execution latencies.  Search is beam search rather than
best-first.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.framework import CandidatePlan
from repro.e2e.neo import _ValueGuidedOptimizer
from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["BalsaOptimizer"]


class BalsaOptimizer(_ValueGuidedOptimizer):
    """Balsa: beam search + sim-to-real bootstrapping."""

    name = "balsa"

    def __init__(
        self, optimizer: Optimizer, *, beam_width: int = 4, seed: int = 0, **kwargs
    ) -> None:
        super().__init__(optimizer, beam_width=beam_width, seed=seed, **kwargs)
        self._rng = np.random.default_rng(seed + 31)

    def bootstrap_from_simulation(
        self, queries: list[Query], episodes_per_query: int = 4
    ) -> None:
        """Phase 1: train the value network against the cost model only.

        Random join orders are costed (never executed); the resulting value
        network is wrong in exactly the ways the cost model is wrong, which
        the real-execution fine-tuning phase then corrects -- Balsa's
        sim-to-real recipe.
        """
        for _ in range(episodes_per_query):
            for query in queries:
                if query.n_tables < 2:
                    continue
                env = JoinOrderEnv(query)
                while not env.done:
                    actions = env.valid_actions()
                    env.step(actions[self._rng.integers(len(actions))])
                plan = plan_from_order(query, env.prefix, self.optimizer.coster)
                pseudo_latency = max(self.optimizer.cost(plan), 0.0) * 0.05
                target = math.log1p(pseudo_latency)
                from repro.costmodel.features import plan_to_tree_arrays

                self._trees.append(plan_to_tree_arrays(plan, self.featurizer))
                self._targets.append(target)
                order = plan.join_order()
                for k in range(1, len(order)):
                    prefix = order[:k]
                    if not query.subquery(prefix).is_connected():
                        break
                    self._trees.append(self._partial_tree(query, prefix))
                    self._targets.append(target)
        self.retrain()

    def choose_plan(self, query: Query) -> CandidatePlan:
        if not self._trained:
            # Balsa has no expert: before any training it can only guess.
            # We keep the safe default (native plan) as its untrained
            # fallback, since executing a random plan on a production
            # system is not a realistic deployment mode.
            return CandidatePlan(plan=self.optimizer.plan(query), source="default")
        return CandidatePlan(plan=self._search_plan(query), source="search")
