"""LOGER-lite [3]: epsilon-beam search for robust plan generation.

LOGER's candidate generation deliberately keeps *randomized* entries in
each beam step (the epsilon-beam), so the learned model keeps seeing --
and learning from -- plans outside its current preference, which [3]
credits for robustness.  The value model here is the shared tree-conv
network (standing in for LOGER's graph transformer over tables and
predicates).
"""

from __future__ import annotations

import numpy as np

from repro.core.framework import CandidatePlan
from repro.e2e.neo import _ValueGuidedOptimizer
from repro.joinorder.env import JoinOrderEnv
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["LogerOptimizer"]


class LogerOptimizer(_ValueGuidedOptimizer):
    """Value-guided epsilon-beam search optimizer (LOGER-lite)."""

    name = "loger"

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        beam_width: int = 4,
        epsilon: float = 0.25,
        seed: int = 0,
        **kwargs,
    ) -> None:
        super().__init__(optimizer, beam_width=beam_width, seed=seed, **kwargs)
        if not 0.0 <= epsilon < 1.0:
            raise ValueError("epsilon must be in [0, 1)")
        self.epsilon = epsilon
        self._eps_rng = np.random.default_rng(seed + 77)

    def _beam_search(self, query: Query) -> list[str]:
        """Beam search keeping one epsilon-random slot per level."""
        beam: list[tuple[float, list[str]]] = [
            (self._value(query, [t]), [t]) for t in query.tables
        ]
        beam.sort(key=lambda e: e[0])
        beam = beam[: self.beam_width]
        env = JoinOrderEnv(query)
        while len(beam[0][1]) < len(query.tables):
            expanded: list[tuple[float, list[str]]] = []
            for _, prefix in beam:
                env.prefix = list(prefix)
                for action in env.valid_actions():
                    nxt = prefix + [action]
                    expanded.append((self._value(query, nxt), nxt))
            expanded.sort(key=lambda e: e[0])
            keep = expanded[: self.beam_width]
            # Epsilon slot: replace the worst kept entry with a random
            # non-kept candidate so exploration never dies out.
            rest = expanded[self.beam_width :]
            if rest and self._eps_rng.random() < self.epsilon:
                keep[-1] = rest[int(self._eps_rng.integers(len(rest)))]
            beam = keep
        return beam[0][1]

    def choose_plan(self, query: Query) -> CandidatePlan:
        if not self._trained:
            return CandidatePlan(plan=self.optimizer.plan(query), source="default")
        return CandidatePlan(plan=self._search_plan(query), source="search")

    def bootstrap_from_expert(self, queries: list[Query], executor) -> None:
        """Seed the value network from executed native plans."""
        for q in queries:
            plan = self.optimizer.plan(q)
            self.record_feedback(q, CandidatePlan(plan, "expert"), executor(plan))
        self.retrain()
