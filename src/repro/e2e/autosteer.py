"""AutoSteer [1]: Bao with automated hint-set discovery.

AutoSteer removes Bao's hand-curated arm list: it probes which individual
operator switches actually *change* the optimizer's plan on a probe
workload, then builds arms from the impactful switches and their pairwise
combinations -- minimizing integration effort for new systems.
"""

from __future__ import annotations

from dataclasses import fields

from repro.e2e.bao import BaoOptimizer
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = ["discover_hint_sets", "AutoSteerOptimizer"]


def discover_hint_sets(
    optimizer: Optimizer, probe_queries: list[Query], max_arms: int = 12
) -> list[HintSet]:
    """Find operator switches that change plans, build arms from them.

    A switch is *impactful* when disabling it alters the plan signature of
    at least one probe query.  Arms = default + each impactful single
    switch + each valid pair of impactful switches, capped at ``max_arms``.
    """
    if not probe_queries:
        raise ValueError("need at least one probe query")
    flag_names = [f.name for f in fields(HintSet)]
    defaults = [optimizer.plan(q).signature() for q in probe_queries]

    impactful: list[str] = []
    for flag in flag_names:
        try:
            hint = HintSet(**{flag: False})
        except ValueError:
            continue  # switching this off alone is invalid
        changed = any(
            optimizer.plan(q, hints=hint).signature() != sig
            for q, sig in zip(probe_queries, defaults)
        )
        if changed:
            impactful.append(flag)

    arms: list[HintSet] = [HintSet.default()]
    for flag in impactful:
        arms.append(HintSet(**{flag: False}))
    for i in range(len(impactful)):
        for j in range(i + 1, len(impactful)):
            if len(arms) >= max_arms:
                break
            try:
                arms.append(HintSet(**{impactful[i]: False, impactful[j]: False}))
            except ValueError:
                continue
    return arms[:max_arms]


class AutoSteerOptimizer(BaoOptimizer):
    """Bao with arms discovered automatically from a probe workload."""

    def __init__(
        self,
        optimizer: Optimizer,
        probe_queries: list[Query],
        *,
        max_arms: int = 12,
        **bao_kwargs,
    ) -> None:
        arms = discover_hint_sets(optimizer, probe_queries, max_arms=max_arms)
        super().__init__(optimizer, arms=arms, **bao_kwargs)
        self.name = "autosteer"
        self.discovered_arms = arms
