"""End-to-end learned query optimizers (paper §2.2).

All six systems instantiate the unified framework of
:mod:`repro.core.framework` -- a plan exploration strategy plus a learned
risk model:

=============  ===========================================  =========================
System         Exploration                                  Risk model
=============  ===========================================  =========================
Bao [37]       hint-set steering of the native optimizer    tree-conv latency + Thompson sampling
Lero [79]      cardinality-scaling knob                     pairwise plan comparator
Neo [38]       value-guided best-first plan search          tree-conv value network (expert-bootstrapped)
Balsa [69]     value-guided beam search                     tree-conv value network (cost-model-bootstrapped)
LEON [4]       native DP keeping top-k per subset           pairwise comparison blended with cost
HyperQO [72]   leading-table hints                          ensemble latency model + variance filter
=============  ===========================================  =========================

Exploration strategies live in :mod:`repro.e2e.exploration`, risk models in
:mod:`repro.e2e.risk_models`; the E11 benchmark sweeps their cross product.
:class:`repro.e2e.loop.OptimizationLoop` drives any of them against the
execution simulator with feedback.
"""

from repro.e2e.exploration import (
    CardinalityScalingExploration,
    HintSetExploration,
    LeadingTableExploration,
)
from repro.e2e.risk_models import (
    EnsembleLatencyModel,
    PairwisePlanComparator,
    TreeConvLatencyModel,
)
from repro.e2e.bao import BaoOptimizer
from repro.e2e.lero import LeroOptimizer
from repro.e2e.neo import NeoOptimizer
from repro.e2e.balsa import BalsaOptimizer
from repro.e2e.leon import LeonOptimizer
from repro.e2e.hyperqo import HyperQOOptimizer
from repro.e2e.autosteer import AutoSteerOptimizer
from repro.e2e.loger import LogerOptimizer
from repro.e2e.loop import EpisodeResult, OptimizationLoop

__all__ = [
    "HintSetExploration",
    "CardinalityScalingExploration",
    "LeadingTableExploration",
    "TreeConvLatencyModel",
    "PairwisePlanComparator",
    "EnsembleLatencyModel",
    "BaoOptimizer",
    "LeroOptimizer",
    "NeoOptimizer",
    "BalsaOptimizer",
    "LeonOptimizer",
    "HyperQOOptimizer",
    "AutoSteerOptimizer",
    "LogerOptimizer",
    "OptimizationLoop",
    "EpisodeResult",
]
