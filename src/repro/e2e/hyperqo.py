"""HyperQO [72]: leading hints + ensemble prediction + variance filtering."""

from __future__ import annotations

from repro.core.framework import LearnedOptimizer
from repro.costmodel.features import PlanFeaturizer
from repro.e2e.exploration import LeadingTableExploration
from repro.e2e.risk_models import EnsembleLatencyModel
from repro.optimizer.planner import Optimizer

__all__ = ["HyperQOOptimizer"]


class HyperQOOptimizer(LearnedOptimizer):
    """HyperQO: leading-table hints explore join orders; a multi-head
    latency ensemble scores candidates and *filters out* high-variance
    (risky) plans before picking the best average -- the hybrid
    cost-based/learning-based selection of [72]."""

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        max_leading: int = 6,
        variance_quantile: float = 0.7,
        retrain_every: int = 25,
        seed: int = 0,
    ) -> None:
        featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        super().__init__(
            exploration=LeadingTableExploration(optimizer, max_leading=max_leading),
            risk_model=EnsembleLatencyModel(
                featurizer, variance_quantile=variance_quantile, seed=seed
            ),
            retrain_every=retrain_every,
            name="hyperqo",
        )
        self.optimizer = optimizer
