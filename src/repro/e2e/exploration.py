"""Plan exploration strategies (the first half of the §2.2 framework)."""

from __future__ import annotations

from repro.core.framework import CandidatePlan
from repro.core.interfaces import ScaledCardinalities
from repro.engine.plans import Plan
from repro.joinorder.env import plan_from_order
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import Optimizer
from repro.sql.query import Query

__all__ = [
    "HintSetExploration",
    "CardinalityScalingExploration",
    "LeadingTableExploration",
]


def _dedup(candidates: list[CandidatePlan]) -> list[CandidatePlan]:
    seen: set[str] = set()
    out = []
    for c in candidates:
        sig = c.plan.signature()
        if sig not in seen:
            seen.add(sig)
            out.append(c)
    return out


class HintSetExploration:
    """Bao's strategy [37]: steer the native optimizer with hint-set arms."""

    def __init__(self, optimizer: Optimizer, arms: list[HintSet] | None = None) -> None:
        self.optimizer = optimizer
        self.arms = arms if arms is not None else HintSet.bao_arms()
        if not self.arms:
            raise ValueError("need at least one hint-set arm")

    def candidates(self, query: Query) -> list[CandidatePlan]:
        out = []
        for i, arm in enumerate(self.arms):
            plan = self.optimizer.plan(query, hints=arm)
            source = "default" if i == 0 else arm.name()
            out.append(CandidatePlan(plan=plan, source=source))
        return _dedup(out)


class CardinalityScalingExploration:
    """Lero's strategy [79]: scale estimated cardinalities by factors."""

    def __init__(
        self,
        optimizer: Optimizer,
        factors: tuple[float, ...] = (1.0, 0.01, 0.1, 10.0, 100.0),
    ) -> None:
        """Put ``1.0`` first so the native plan survives deduplication as
        the ``"default"`` candidate (warm-up safety depends on it)."""
        if not factors:
            raise ValueError("need at least one scaling factor")
        self.optimizer = optimizer
        self.factors = factors

    def candidates(self, query: Query) -> list[CandidatePlan]:
        out = []
        for f in self.factors:
            if f == 1.0:
                opt = self.optimizer
                source = "default"
            else:
                opt = self.optimizer.with_estimator(
                    ScaledCardinalities(self.optimizer.estimator, f)
                )
                source = f"scale={f:g}"
            out.append(CandidatePlan(plan=opt.plan(query), source=source))
        return _dedup(out)


class LeadingTableExploration:
    """HyperQO's strategy [72]: leading hints forcing the first table."""

    def __init__(self, optimizer: Optimizer, max_leading: int = 6) -> None:
        self.optimizer = optimizer
        self.max_leading = max_leading

    def candidates(self, query: Query) -> list[CandidatePlan]:
        out = [CandidatePlan(plan=self.optimizer.plan(query), source="default")]
        if query.n_tables >= 2:
            for table in query.tables[: self.max_leading]:
                plan = self._leading_plan(query, table)
                if plan is not None:
                    out.append(CandidatePlan(plan=plan, source=f"leading={table}"))
        return _dedup(out)

    def _leading_plan(self, query: Query, leading: str) -> Plan | None:
        """Greedy left-deep plan forced to start at ``leading``."""
        coster = self.optimizer.coster
        order = [leading]
        remaining = set(query.tables) - {leading}
        adj: dict[str, set[str]] = {t: set() for t in query.tables}
        for j in query.joins:
            adj[j.left.table].add(j.right.table)
            adj[j.right.table].add(j.left.table)
        while remaining:
            frontier = sorted(
                t for t in remaining if adj[t] & set(order)
            )
            if not frontier:
                return None
            # Greedy: next table minimizing the intermediate estimate.
            best = min(
                frontier,
                key=lambda t: coster.subquery_cardinality(
                    query, frozenset(order + [t])
                ),
            )
            order.append(best)
            remaining.discard(best)
        return plan_from_order(query, order, coster)
