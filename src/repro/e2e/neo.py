"""Neo [38]: a learned optimizer searching the plan space from scratch.

Neo replaces the whole optimizer: a tree-conv *value network* predicts the
best achievable final latency from a partial plan, a best-first search
expands the most promising partial plans, and execution feedback retrains
the network.  Cold start is handled by bootstrapping from *expert
demonstrations* -- the native optimizer's plans and their latencies.

:class:`_ValueGuidedOptimizer` holds the machinery shared with Balsa
(which differs only in bootstrap source and search flavour).
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np

from repro.core.framework import CandidatePlan, Experience
from repro.costmodel.features import PlanFeaturizer, plan_to_tree_arrays
from repro.engine.plans import JoinNode, Plan, PlanNode, ScanNode
from repro.joinorder.env import JoinOrderEnv, plan_from_order
from repro.ml.treeconv import TreeConvNet
from repro.optimizer.planner import Optimizer, _join_conditions_between
from repro.sql.query import Query

__all__ = ["NeoOptimizer"]


class _ValueGuidedOptimizer:
    """Shared value-network search machinery for Neo and Balsa."""

    name = "value_guided"

    def __init__(
        self,
        optimizer: Optimizer,
        *,
        retrain_every: int = 25,
        search_budget: int = 80,
        beam_width: int = 0,
        seed: int = 0,
    ) -> None:
        self.optimizer = optimizer
        self.featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        self.net = TreeConvNet(
            self.featurizer.node_dim,
            conv_channels=(32, 32),
            head_hidden=(16,),
            seed=seed,
        )
        self.retrain_every = retrain_every
        self.search_budget = search_budget
        self.beam_width = beam_width  # 0 = best-first (Neo), >0 = beam (Balsa)
        self.history: list[Experience] = []
        self._trees: list[tuple] = []
        self._targets: list[float] = []
        self._trained = False
        self._since_retrain = 0
        self._counter = itertools.count()

    # -- partial-plan encoding -----------------------------------------------------

    def _partial_tree(self, query: Query, prefix: list[str]):
        node: PlanNode = ScanNode(
            table=prefix[0], predicates=query.predicates_on(prefix[0])
        )
        for t in prefix[1:]:
            right = ScanNode(table=t, predicates=query.predicates_on(t))
            conditions = _join_conditions_between(query, node.tables, right.tables)
            node = JoinNode(node, right, conditions=conditions)
        feats, left, right_idx = [], [], []

        def visit(n: PlanNode) -> int:
            my = len(feats)
            sub = query.subquery(n.tables)
            est = max(self.optimizer.estimator.estimate(sub), 0.0)
            vec = np.zeros(self.featurizer.node_dim)
            n_ops = 5
            if isinstance(n, ScanNode):
                vec[0] = 1.0
                vec[n_ops + self.featurizer.tables.index(n.table)] = 1.0
                preds = len(n.predicates) / 4.0
            else:
                vec[2] = 1.0
                preds = 0.0
            base = n_ops + len(self.featurizer.tables)
            vec[base] = math.log1p(est) / 20.0
            vec[base + 1] = len(n.tables) / max(len(self.featurizer.tables), 1)
            vec[base + 2] = preds
            feats.append(vec)
            left.append(-1)
            right_idx.append(-1)
            if isinstance(n, JoinNode):
                left[my] = visit(n.left)
                right_idx[my] = visit(n.right)
            return my

        visit(node)
        return np.stack(feats), np.array(left), np.array(right_idx)

    def _value(self, query: Query, prefix: list[str]) -> float:
        return float(self.net.predict([self._partial_tree(query, prefix)])[0])

    # -- search ----------------------------------------------------------------------

    def _search_plan(self, query: Query) -> Plan:
        if query.n_tables == 1:
            return self.optimizer.plan(query)
        if self.beam_width > 0:
            order = self._beam_search(query)
        else:
            order = self._best_first(query)
        return plan_from_order(query, order, self.optimizer.coster)

    def _best_first(self, query: Query) -> list[str]:
        """Neo's best-first search over left-deep prefixes."""
        heap: list[tuple[float, int, list[str]]] = []
        for t in query.tables:
            heapq.heappush(
                heap, (self._value(query, [t]), next(self._counter), [t])
            )
        expansions = 0
        best_complete: tuple[float, list[str]] | None = None
        env_proto = JoinOrderEnv(query)
        while heap and expansions < self.search_budget:
            value, _, prefix = heapq.heappop(heap)
            if len(prefix) == len(query.tables):
                if best_complete is None or value < best_complete[0]:
                    best_complete = (value, prefix)
                break  # best-first: first completed state is the answer
            expansions += 1
            env_proto.prefix = list(prefix)
            for action in env_proto.valid_actions():
                nxt = prefix + [action]
                heapq.heappush(
                    heap, (self._value(query, nxt), next(self._counter), nxt)
                )
        if best_complete is not None:
            return best_complete[1]
        # Budget exhausted: greedily complete the most promising prefix.
        prefix = heap[0][2] if heap else [query.tables[0]]
        env_proto.prefix = list(prefix)
        while len(env_proto.prefix) < len(query.tables):
            actions = env_proto.valid_actions()
            best = min(actions, key=lambda a: self._value(query, env_proto.prefix + [a]))
            env_proto.step(best)
        return env_proto.prefix

    def _beam_search(self, query: Query) -> list[str]:
        """Balsa's beam search over left-deep prefixes."""
        beam: list[tuple[float, list[str]]] = [
            (self._value(query, [t]), [t]) for t in query.tables
        ]
        beam.sort(key=lambda e: e[0])
        beam = beam[: self.beam_width]
        env = JoinOrderEnv(query)
        while len(beam[0][1]) < len(query.tables):
            expanded: list[tuple[float, list[str]]] = []
            for _, prefix in beam:
                env.prefix = list(prefix)
                for action in env.valid_actions():
                    nxt = prefix + [action]
                    expanded.append((self._value(query, nxt), nxt))
            expanded.sort(key=lambda e: e[0])
            beam = expanded[: self.beam_width]
        return beam[0][1]

    # -- framework API -----------------------------------------------------------------

    def choose_plan(self, query: Query) -> CandidatePlan:
        if not self._trained:
            # Cold start: expert demonstration (native plan).
            return CandidatePlan(plan=self.optimizer.plan(query), source="default")
        return CandidatePlan(plan=self._search_plan(query), source="search")

    def record_feedback(
        self, query: Query, candidate: CandidatePlan, latency_ms: float
    ) -> None:
        self.history.append(Experience(query, candidate, latency_ms))
        target = math.log1p(max(latency_ms, 0.0))
        plan = candidate.plan
        self._trees.append(plan_to_tree_arrays(plan, self.featurizer))
        self._targets.append(target)
        # Partial states along the plan's leaf order share the final value.
        order = plan.join_order()
        for k in range(1, len(order)):
            prefix = order[:k]
            if not query.subquery(prefix).is_connected():
                break
            self._trees.append(self._partial_tree(query, prefix))
            self._targets.append(target)
        self._since_retrain += 1
        if self.retrain_every and self._since_retrain >= self.retrain_every:
            self.retrain()

    def retrain(self) -> None:
        self._since_retrain = 0
        if len(self._targets) < 20:
            return
        self.net.fit(
            self._trees[-3000:],
            np.array(self._targets[-3000:]),
            epochs=25,
            lr=1e-3,
        )
        self._trained = True


class NeoOptimizer(_ValueGuidedOptimizer):
    """Neo: best-first value-guided search, expert-bootstrapped.

    Call :meth:`bootstrap_from_expert` with an executed demonstration
    workload before relying on the search (otherwise the first
    ``retrain_every`` queries simply use the native optimizer, which is
    also Neo's warm-up behaviour).
    """

    name = "neo"

    def __init__(self, optimizer: Optimizer, **kwargs) -> None:
        super().__init__(optimizer, beam_width=0, **kwargs)

    def bootstrap_from_expert(
        self, queries: list[Query], executor
    ) -> None:
        """Seed the value network from native plans + their latencies.

        ``executor(plan) -> latency_ms`` runs a plan (pass
        ``simulator.latency``).
        """
        for q in queries:
            plan = self.optimizer.plan(q)
            latency = executor(plan)
            self.record_feedback(q, CandidatePlan(plan, "expert"), latency)
        self.retrain()
