"""Lero [79]: learning-to-rank over cardinality-scaled candidate plans."""

from __future__ import annotations

from repro.core.framework import LearnedOptimizer
from repro.costmodel.features import PlanFeaturizer
from repro.e2e.exploration import CardinalityScalingExploration
from repro.e2e.risk_models import PairwisePlanComparator
from repro.optimizer.planner import Optimizer

__all__ = ["LeroOptimizer"]


class LeroOptimizer(LearnedOptimizer):
    """Lero: cardinality-scaling exploration + pairwise comparator.

    Candidates come from re-planning under scaled cardinality estimates
    (the tuning knob); a pairwise classifier learns which of two plans is
    faster from executed pairs, and the candidate ranked best (most
    pairwise wins, equivalently lowest learned score) is executed.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        factors: tuple[float, ...] = (1.0, 0.01, 0.1, 10.0, 100.0),
        *,
        retrain_every: int = 25,
        seed: int = 0,
    ) -> None:
        if factors[0] != 1.0:
            raise ValueError(
                "the first factor must be 1.0 so the native plan is the "
                "default candidate"
            )
        featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        super().__init__(
            exploration=CardinalityScalingExploration(optimizer, factors),
            risk_model=PairwisePlanComparator(featurizer, seed=seed),
            retrain_every=retrain_every,
            name="lero",
        )
        self.optimizer = optimizer

    def cache_stats(self) -> dict[str, float]:
        """Cardinality-cache counters accumulated across the factor sweeps.

        The per-factor ``ScaledCardinalities`` wrappers are recreated every
        planning, but their cache tags derive from the (stable) base
        estimator plus the factor, so repeated plannings under the same
        factor keep hitting the shared cache.
        """
        return self.optimizer.cache_stats()

    def train_offline(
        self,
        queries,
        executor,
        max_candidates_per_query: int = 3,
    ) -> int:
        """Lero's pair-collection phase: execute several candidate plans
        per training query so the comparator sees labelled same-query
        pairs.  ``executor(plan) -> latency_ms``.  Returns the number of
        pairs available after training."""
        for query in queries:
            candidates = self.exploration.candidates(query)[
                :max_candidates_per_query
            ]
            if len(candidates) < 2:
                continue
            for cand in candidates:
                self.risk_model.observe(cand, executor(cand.plan))
        self.risk_model.retrain()
        return self.risk_model.n_pairs
