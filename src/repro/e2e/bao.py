"""Bao [37]: steering the native optimizer with learned hint selection."""

from __future__ import annotations

from repro.core.framework import LearnedOptimizer
from repro.costmodel.features import PlanFeaturizer
from repro.e2e.exploration import HintSetExploration
from repro.e2e.risk_models import TreeConvLatencyModel
from repro.optimizer.hints import HintSet
from repro.optimizer.planner import Optimizer

__all__ = ["BaoOptimizer"]


class BaoOptimizer(LearnedOptimizer):
    """Bao: hint-set arms + tree-conv latency model + Thompson sampling.

    The native optimizer is steered by enabling/disabling operator families
    (the arms); a tree-convolution model trained on observed latencies
    predicts each arm's plan latency, and Thompson sampling over a
    bootstrap ensemble trades exploration against exploitation.  Before
    enough feedback accumulates the default (un-steered) plan is used.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        arms: list[HintSet] | None = None,
        *,
        retrain_every: int = 25,
        thompson: bool = True,
        seed: int = 0,
    ) -> None:
        featurizer = PlanFeaturizer(optimizer.db, optimizer.estimator)
        super().__init__(
            exploration=HintSetExploration(optimizer, arms),
            risk_model=TreeConvLatencyModel(
                featurizer, thompson=thompson, seed=seed
            ),
            retrain_every=retrain_every,
            name="bao",
        )
        self.optimizer = optimizer

    def cache_stats(self) -> dict[str, float]:
        """Cardinality-cache counters accumulated across the arm sweeps.

        Every arm re-plans the same query, so after the first arm almost
        every sub-query estimate is a cache hit -- the cache is what keeps
        Bao's steering overhead near a single planning.
        """
        return self.optimizer.cache_stats()
