"""repro: a learned-query-optimizer workbench.

A working reproduction of the landscape surveyed by *"Learned Query
Optimizer: What is New and What is Next"* (SIGMOD 2024): a mini-DBMS
substrate with a Volcano-style optimizer and deterministic execution
simulator, twenty learned cardinality estimators, five learned cost
models, four RL join-order searchers, seven end-to-end learned optimizers
under one unified framework, two regression-elimination plugins, and a
PilotScope-style deployment middleware -- all pure Python + numpy.

Quickstart::

    from repro import quickstart_database, Optimizer, ExecutionSimulator
    from repro.sql import parse_query

    db = quickstart_database()
    opt = Optimizer(db)
    sim = ExecutionSimulator(db)
    plan = opt.plan(parse_query(
        "SELECT COUNT(*) FROM posts, users "
        "WHERE posts.owner_id = users.id AND users.reputation <= 5"))
    print(plan.pretty())
    print(sim.execute(plan).latency_ms, "ms")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduced experiments.
"""

from repro.storage import Database, make_imdb_lite, make_stats_lite, make_tpch_lite
from repro.sql import Query, WorkloadGenerator, parse_query
from repro.engine import CardinalityExecutor, ExecutionSimulator, Plan
from repro.optimizer import HintSet, Optimizer
from repro.core import LearnedOptimizer, registry

__version__ = "0.1.0"

__all__ = [
    "Database",
    "make_imdb_lite",
    "make_stats_lite",
    "make_tpch_lite",
    "quickstart_database",
    "Query",
    "WorkloadGenerator",
    "parse_query",
    "CardinalityExecutor",
    "ExecutionSimulator",
    "Plan",
    "HintSet",
    "Optimizer",
    "LearnedOptimizer",
    "registry",
]


def quickstart_database() -> Database:
    """A small STATS-style database for examples and doctests."""
    return make_stats_lite(scale=0.5, seed=0)
