"""Canonical workload recipes and the data-drift generator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.generator import WorkloadGenerator
from repro.sql.query import ColumnRef, Join, Op, Predicate, Query
from repro.storage.catalog import Database

__all__ = [
    "WorkloadSpec",
    "adversarial_hot_key_drift",
    "apply_drift",
    "hot_key_probe_queries",
    "hot_key_targets",
    "make_workloads",
]


@dataclass
class WorkloadSpec:
    """A reproducible train/test workload pair over one database."""

    train: list[Query]
    test: list[Query]


def make_workloads(
    db: Database,
    *,
    n_train: int = 300,
    n_test: int = 80,
    min_tables: int = 1,
    max_tables: int = 4,
    train_seed: int = 1,
    test_seed: int = 97,
    single_table: str | None = None,
) -> WorkloadSpec:
    """Standard workload recipe used across experiments.

    ``single_table`` switches to the [61]-style single-table range
    workload over the named table.
    """
    train_gen = WorkloadGenerator(db, seed=train_seed)
    test_gen = WorkloadGenerator(db, seed=test_seed)
    if single_table is not None:
        return WorkloadSpec(
            train=train_gen.single_table_workload(single_table, n_train),
            test=test_gen.single_table_workload(single_table, n_test),
        )
    return WorkloadSpec(
        train=train_gen.workload(
            n_train, min_tables, max_tables, require_predicate=True
        ),
        test=test_gen.workload(
            n_test, min_tables, max_tables, require_predicate=True
        ),
    )


def apply_drift(
    db: Database,
    *,
    fraction: float = 0.2,
    shift_quantile: float = 0.75,
    seed: int = 0,
) -> list[str]:
    """Append distribution-shifted rows to every table (dynamic-data tests).

    New rows take non-key column values from the top ``shift_quantile``
    tail of the existing distribution (so the data's shape genuinely
    changes), foreign keys resample uniformly over existing parents (which
    flattens the fan-out skew), and primary keys continue the sequence.
    Returns the list of modified tables.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    # Which (table, column) pairs are FK sides of join edges.
    key_cols: dict[str, set[str]] = {t: set() for t in db.table_names}
    for e in db.joins:
        key_cols[e.left_table].add(e.left_column)
        key_cols[e.right_table].add(e.right_column)

    changed: list[str] = []
    # Snapshot parent keys before any append so FKs stay valid.
    parents: dict[tuple[str, str], np.ndarray] = {}
    for t in db.table_names:
        for c in key_cols[t]:
            parents[(t, c)] = db.table(t).values(c).copy()

    for tname in db.table_names:
        table = db.table(tname)
        n_new = int(table.n_rows * fraction)
        if n_new == 0:
            continue
        rows: dict[str, np.ndarray] = {}
        for cname in table.column_names:
            col = table.column(cname)
            if col.is_key:
                start = int(col.values.max()) + 1
                rows[cname] = np.arange(start, start + n_new, dtype=col.values.dtype)
            elif cname in key_cols[tname] and not col.is_key:
                # FK: resample uniformly from the parent side of some edge.
                edge = next(
                    e
                    for e in db.joins
                    if (e.left_table, e.left_column) == (tname, cname)
                    or (e.right_table, e.right_column) == (tname, cname)
                )
                other_t = edge.other(tname)
                other_c = edge.column_of(other_t)
                pool = parents.get((other_t, other_c))
                if pool is None:
                    pool = db.table(other_t).values(other_c)
                rows[cname] = rng.choice(pool, size=n_new).astype(col.values.dtype)
            else:
                hi_vals = col.values[
                    col.values >= np.quantile(col.values, shift_quantile)
                ]
                if hi_vals.size == 0:
                    hi_vals = col.values
                rows[cname] = rng.choice(hi_vals, size=n_new).astype(col.values.dtype)
        table.append_rows(rows)
        changed.append(tname)
    return changed


def _parent_children(
    db: Database,
) -> dict[tuple[str, str], list[tuple[str, str]]]:
    """Join graph as FK references: (parent_table, key_column) ->
    [(child_table, fk_column), ...], sorted for determinism."""
    children: dict[tuple[str, str], list[tuple[str, str]]] = {}
    for e in db.joins:
        sides = (
            ((e.left_table, e.left_column), (e.right_table, e.right_column)),
            ((e.right_table, e.right_column), (e.left_table, e.left_column)),
        )
        for (pt, pc), (ct, cc) in sides:
            if db.table(pt).column(pc).is_key and not db.table(ct).column(cc).is_key:
                children.setdefault((pt, pc), []).append((ct, cc))
    return {k: sorted(v) for k, v in sorted(children.items())}


def hot_key_targets(db: Database) -> dict[tuple[str, str], float]:
    """Per parent key column, the *least-referenced* existing key value.

    These are the values :func:`adversarial_hot_key_drift` turns hot: an
    existing parent key that pre-drift statistics rightly consider rare,
    so any estimator built before the drift keeps believing predicates
    and joins through it are near-empty.  A pure function of the current
    data -- callers can compute targets up front, build probe queries
    against them, and hand the same targets to the drift so the two
    always agree.
    """
    targets: dict[tuple[str, str], float] = {}
    for (pt, pc), kids in _parent_children(db).items():
        pool = db.table(pt).values(pc)
        refs = np.concatenate([db.table(ct).values(cc) for ct, cc in kids])
        uniq, counts = np.unique(refs, return_counts=True)
        ref_count = dict(zip(uniq.tolist(), counts.tolist()))
        targets[(pt, pc)] = float(
            min(pool.tolist(), key=lambda v: (ref_count.get(v, 0), v))
        )
    return targets


def adversarial_hot_key_drift(
    db: Database,
    *,
    fraction: float = 0.5,
    seed: int = 0,
    targets: dict[tuple[str, str], float] | None = None,
) -> dict[tuple[str, str], float]:
    """Append rows that pile every child table's foreign keys onto one
    previously-cold parent key (per parent), making it the hottest value.

    Where :func:`apply_drift` *flattens* fan-out skew (FKs resample
    uniformly), this drift concentrates it where pre-drift statistics
    least expect it: all new child rows reference the same formerly
    rare parent key (:func:`hot_key_targets`), and all children of one
    parent pile onto the *same* key -- so true join sizes through it
    explode multiplicatively while any estimator built on stale
    statistics keeps predicting near-zero.  That asymmetry is the worst
    case for an optimistic planner (believed-empty intermediates invite
    nested-loop plans that now take seconds) and exactly the case a
    refreshed pessimistic bound, or a serving-side bound guard fed
    observed counts, exists to survive.  Only tables with at least one
    non-key FK column grow; primary keys continue the sequence and other
    columns resample from the existing distribution.  Returns the target
    mapping used (computed here unless passed in).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    if targets is None:
        targets = hot_key_targets(db)
    fk_value: dict[tuple[str, str], float] = {}
    for (pt, pc), kids in _parent_children(db).items():
        for ct, cc in kids:
            if (pt, pc) in targets:
                fk_value[(ct, cc)] = targets[(pt, pc)]

    for tname in db.table_names:
        table = db.table(tname)
        hot_cols = [c for c in table.column_names if (tname, c) in fk_value]
        n_new = int(table.n_rows * fraction)
        if not hot_cols or n_new == 0:
            continue
        rows: dict[str, np.ndarray] = {}
        for cname in table.column_names:
            col = table.column(cname)
            if col.is_key:
                start = int(col.values.max()) + 1
                rows[cname] = np.arange(
                    start, start + n_new, dtype=col.values.dtype
                )
            elif cname in hot_cols:
                rows[cname] = np.full(
                    n_new, fk_value[(tname, cname)], dtype=col.values.dtype
                )
            else:
                rows[cname] = rng.choice(col.values, size=n_new).astype(
                    col.values.dtype
                )
        table.append_rows(rows)
    return targets


def hot_key_probe_queries(
    db: Database, targets: dict[tuple[str, str], float]
) -> list[Query]:
    """Join queries that cross the hot keys -- the adversarial probes.

    Three escalating shapes per the join graph, each with an equality
    predicate pinning a child FK to its (post-drift hot) target value:

    - child |><| parent -- the estimate is wrong by the full fan-out;
    - sibling |><| parent |><| sibling -- two children of the same parent,
      a many-to-many blow-up through the shared hot key;
    - the bushy trap: two (child, parent) pairs from *different* parents
      linked by a join edge, with both FKs pinned -- believed-tiny on both
      sides, which is what baits an optimistic planner into a naive
      nested loop over two huge intermediates.

    Deterministic order, deduplicated.  Run against pre-drift data these
    are all near-empty and harmless; after :func:`adversarial_hot_key_drift`
    they are the tail of the workload.
    """
    groups = [
        ((pt, pc), kids)
        for (pt, pc), kids in _parent_children(db).items()
        if (pt, pc) in targets
    ]
    edge_of: dict[tuple[str, str, str, str], Join] = {}
    for (pt, pc), kids in groups:
        for ct, cc in kids:
            edge_of[(ct, cc, pt, pc)] = Join(ColumnRef(ct, cc), ColumnRef(pt, pc))

    def probe(ct: str, cc: str, pt: str, pc: str) -> Predicate:
        return Predicate(ColumnRef(ct, cc), Op.EQ, targets[(pt, pc)])

    queries: list[Query] = []
    # child |><| parent
    for (pt, pc), kids in groups:
        for ct, cc in kids:
            queries.append(
                Query(
                    tuple(sorted((ct, pt))),
                    (edge_of[(ct, cc, pt, pc)],),
                    (probe(ct, cc, pt, pc),),
                )
            )
    # sibling |><| parent |><| sibling
    for (pt, pc), kids in groups:
        for i, (ct1, cc1) in enumerate(kids):
            for ct2, cc2 in kids[i + 1 :]:
                if ct1 == ct2:
                    continue
                queries.append(
                    Query(
                        tuple(sorted((ct1, ct2, pt))),
                        (
                            edge_of[(ct1, cc1, pt, pc)],
                            edge_of[(ct2, cc2, pt, pc)],
                        ),
                        (probe(ct1, cc1, pt, pc),),
                    )
                )
    # the bushy trap: two pinned (child, parent) pairs + a linking edge
    for i, ((pt1, pc1), kids1) in enumerate(groups):
        for (pt2, pc2), kids2 in groups[i + 1 :]:
            for ct1, cc1 in kids1:
                for ct2, cc2 in kids2:
                    tables = {ct1, pt1, ct2, pt2}
                    if len(tables) < 4:
                        continue
                    link = next(
                        (
                            Join(
                                ColumnRef(lt, lc), ColumnRef(rt, rc)
                            )
                            for (lt, lc, rt, rc) in sorted(edge_of)
                            if {lt, rt} <= tables
                            and {lt, rt} not in ({ct1, pt1}, {ct2, pt2})
                        ),
                        None,
                    )
                    if link is None:
                        continue
                    queries.append(
                        Query(
                            tuple(sorted(tables)),
                            (
                                edge_of[(ct1, cc1, pt1, pc1)],
                                edge_of[(ct2, cc2, pt2, pc2)],
                                link,
                            ),
                            (
                                probe(ct1, cc1, pt1, pc1),
                                probe(ct2, cc2, pt2, pc2),
                            ),
                        )
                    )
    seen: set[str] = set()
    unique: list[Query] = []
    for q in queries:
        if q.cache_key not in seen:
            seen.add(q.cache_key)
            unique.append(q)
    return unique
