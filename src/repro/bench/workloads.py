"""Canonical workload recipes and the data-drift generator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sql.generator import WorkloadGenerator
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["WorkloadSpec", "make_workloads", "apply_drift"]


@dataclass
class WorkloadSpec:
    """A reproducible train/test workload pair over one database."""

    train: list[Query]
    test: list[Query]


def make_workloads(
    db: Database,
    *,
    n_train: int = 300,
    n_test: int = 80,
    min_tables: int = 1,
    max_tables: int = 4,
    train_seed: int = 1,
    test_seed: int = 97,
    single_table: str | None = None,
) -> WorkloadSpec:
    """Standard workload recipe used across experiments.

    ``single_table`` switches to the [61]-style single-table range
    workload over the named table.
    """
    train_gen = WorkloadGenerator(db, seed=train_seed)
    test_gen = WorkloadGenerator(db, seed=test_seed)
    if single_table is not None:
        return WorkloadSpec(
            train=train_gen.single_table_workload(single_table, n_train),
            test=test_gen.single_table_workload(single_table, n_test),
        )
    return WorkloadSpec(
        train=train_gen.workload(
            n_train, min_tables, max_tables, require_predicate=True
        ),
        test=test_gen.workload(
            n_test, min_tables, max_tables, require_predicate=True
        ),
    )


def apply_drift(
    db: Database,
    *,
    fraction: float = 0.2,
    shift_quantile: float = 0.75,
    seed: int = 0,
) -> list[str]:
    """Append distribution-shifted rows to every table (dynamic-data tests).

    New rows take non-key column values from the top ``shift_quantile``
    tail of the existing distribution (so the data's shape genuinely
    changes), foreign keys resample uniformly over existing parents (which
    flattens the fan-out skew), and primary keys continue the sequence.
    Returns the list of modified tables.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    # Which (table, column) pairs are FK sides of join edges.
    key_cols: dict[str, set[str]] = {t: set() for t in db.table_names}
    for e in db.joins:
        key_cols[e.left_table].add(e.left_column)
        key_cols[e.right_table].add(e.right_column)

    changed: list[str] = []
    # Snapshot parent keys before any append so FKs stay valid.
    parents: dict[tuple[str, str], np.ndarray] = {}
    for t in db.table_names:
        for c in key_cols[t]:
            parents[(t, c)] = db.table(t).values(c).copy()

    for tname in db.table_names:
        table = db.table(tname)
        n_new = int(table.n_rows * fraction)
        if n_new == 0:
            continue
        rows: dict[str, np.ndarray] = {}
        for cname in table.column_names:
            col = table.column(cname)
            if col.is_key:
                start = int(col.values.max()) + 1
                rows[cname] = np.arange(start, start + n_new, dtype=col.values.dtype)
            elif cname in key_cols[tname] and not col.is_key:
                # FK: resample uniformly from the parent side of some edge.
                edge = next(
                    e
                    for e in db.joins
                    if (e.left_table, e.left_column) == (tname, cname)
                    or (e.right_table, e.right_column) == (tname, cname)
                )
                other_t = edge.other(tname)
                other_c = edge.column_of(other_t)
                pool = parents.get((other_t, other_c))
                if pool is None:
                    pool = db.table(other_t).values(other_c)
                rows[cname] = rng.choice(pool, size=n_new).astype(col.values.dtype)
            else:
                hi_vals = col.values[
                    col.values >= np.quantile(col.values, shift_quantile)
                ]
                if hi_vals.size == 0:
                    hi_vals = col.values
                rows[cname] = rng.choice(hi_vals, size=n_new).astype(col.values.dtype)
        table.append_rows(rows)
        changed.append(tname)
    return changed
