"""Estimator suite builders: construct methods consistently per experiment.

Every benchmark that compares estimators uses these factories so that
hyper-parameters (training epochs, sample sizes) are controlled in one
place per budget level.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cardest import (
    ALECEEstimator,
    CRNEstimator,
    GLPlusEstimator,
    LPCEEstimator,
    PooledMSCNEstimator,
    QuickSelEstimator,
    BayesNetEstimator,
    FactorJoinEstimator,
    FSPNEstimator,
    GBDTQueryEstimator,
    GLUEEstimator,
    HistogramEstimator,
    JoinKDEEstimator,
    KDEEstimator,
    LinearQueryEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    NaruEstimator,
    NeuroCardEstimator,
    RobustMSCNEstimator,
    SamplingEstimator,
    SPNEstimator,
    UAEEstimator,
)
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = [
    "build_estimator",
    "query_driven_estimators",
    "data_driven_estimators",
    "hybrid_estimators",
    "traditional_estimators",
    "registered_estimators",
    "fit_estimator",
    "estimate_workload",
]

#: supervised estimators whose ``fit`` takes (queries, cards)
_SUPERVISED = {
    "linear", "gbdt", "mlp", "mscn", "pooled_mscn", "robust_mscn",
    "quicksel", "lpce", "alece", "crn", "gl_plus",
}


def traditional_estimators() -> list[str]:
    return ["histogram", "sampling"]


def query_driven_estimators() -> list[str]:
    return ["linear", "gbdt", "mlp", "mscn", "robust_mscn"]


def data_driven_estimators() -> list[str]:
    return ["kde", "naru", "bayesnet", "spn", "fspn", "factorjoin"]


def hybrid_estimators() -> list[str]:
    return ["uae", "glue", "alece"]


def _estimator_factories(db: Database, *, full: bool, seed: int) -> dict:
    """Name -> zero-arg constructor; building the dict touches nothing."""
    epochs_nn = 80 if full else 30
    epochs_ar = 12 if full else 5
    return {
        "histogram": lambda: HistogramEstimator(db),
        # Absolute per-table sample sizes (150 rows full / 100 fast), NOT a
        # sampling rate: large enough to be a serious baseline, small enough
        # that its selective-predicate tail blow-ups (the behaviour the
        # benchmark papers report) are visible at this scale.
        "sampling": lambda: SamplingEstimator(db, 150 if full else 100, seed=seed),
        "linear": lambda: LinearQueryEstimator(db),
        "gbdt": lambda: GBDTQueryEstimator(db, seed=seed),
        "mlp": lambda: MLPQueryEstimator(db, epochs=epochs_nn, seed=seed),
        "mscn": lambda: MSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "robust_mscn": lambda: RobustMSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "quicksel": lambda: QuickSelEstimator(db),
        "lpce": lambda: LPCEEstimator(db, seed=seed),
        "pooled_mscn": lambda: PooledMSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "crn": lambda: CRNEstimator(db, epochs=epochs_nn, seed=seed),
        "gl_plus": lambda: GLPlusEstimator(db, epochs=epochs_nn, seed=seed),
        "kde": lambda: KDEEstimator(db, seed=seed),
        "join_kde": lambda: JoinKDEEstimator(db, seed=seed),
        "naru": lambda: NaruEstimator(db, epochs=epochs_ar, seed=seed),
        "neurocard": lambda: NeuroCardEstimator(
            db, epochs=epochs_ar, n_samples=1500 if full else 700, seed=seed
        ),
        "bayesnet": lambda: BayesNetEstimator(db),
        "spn": lambda: SPNEstimator(db, seed=seed),
        "fspn": lambda: FSPNEstimator(db, seed=seed),
        "factorjoin": lambda: FactorJoinEstimator(db, seed=seed),
        "uae": lambda: UAEEstimator(db, epochs=epochs_ar, seed=seed),
        "glue": lambda: GLUEEstimator(db, FSPNEstimator(db, seed=seed)),
        "alece": lambda: ALECEEstimator(db, epochs=epochs_nn * 2, seed=seed),
    }


def registered_estimators() -> list[str]:
    """Every name :func:`build_estimator` accepts, sorted."""
    return sorted(_estimator_factories(None, full=False, seed=0))


def build_estimator(name: str, db: Database, *, budget: str = "fast", seed: int = 0):
    """Construct one estimator by registry-style name.

    ``budget`` is ``"fast"`` (test-suite scale) or ``"full"`` (benchmark
    scale: more epochs / samples).
    """
    factories = _estimator_factories(db, full=budget == "full", seed=seed)
    if name not in factories:
        raise ValueError(f"unknown estimator {name!r}; valid: {sorted(factories)}")
    return factories[name]()


def fit_estimator(estimator, train_queries: list[Query], train_cards: np.ndarray) -> float:
    """Fit an estimator with whatever supervision it accepts.

    Returns the wall-clock training seconds.  Exactly one branch applies
    per estimator: hybrids expose ``fit_queries`` (query feedback on top of
    a data model), supervised query-driven models expose ``fit`` and are
    listed in ``_SUPERVISED``, and sample-prebuilding data-driven models
    expose ``prebuild``.  Pure data-driven models were already built at
    construction and fall through untouched.
    """
    t0 = time.perf_counter()
    if hasattr(estimator, "fit_queries"):
        estimator.fit_queries(train_queries, train_cards)
    elif getattr(estimator, "name", "") in _SUPERVISED:
        estimator.fit(train_queries, train_cards)
    elif hasattr(estimator, "prebuild"):
        estimator.prebuild(train_queries)
    return time.perf_counter() - t0


def estimate_workload(estimator, queries: list[Query]) -> np.ndarray:
    """Estimates for a whole workload through the batched API.

    Thin wrapper over :func:`repro.core.interfaces.batch_estimate` so every
    benchmark goes through one choke point: estimators with a native
    ``estimate_batch`` answer in one forward pass, everything else falls
    back to a scalar loop with identical results.
    """
    from repro.core.interfaces import batch_estimate

    return batch_estimate(estimator, queries)
