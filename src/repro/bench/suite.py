"""Estimator suite builders: construct methods consistently per experiment.

Every benchmark that compares estimators uses these factories so that
hyper-parameters (training epochs, sample sizes) are controlled in one
place per budget level.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cardest import (
    ALECEEstimator,
    CRNEstimator,
    GLPlusEstimator,
    LPCEEstimator,
    PooledMSCNEstimator,
    QuickSelEstimator,
    BayesNetEstimator,
    FactorJoinEstimator,
    FSPNEstimator,
    GBDTQueryEstimator,
    GLUEEstimator,
    HistogramEstimator,
    JoinKDEEstimator,
    KDEEstimator,
    LinearQueryEstimator,
    MLPQueryEstimator,
    MSCNEstimator,
    NaruEstimator,
    NeuroCardEstimator,
    RobustMSCNEstimator,
    SamplingEstimator,
    SPNEstimator,
    UAEEstimator,
)
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = [
    "build_estimator",
    "query_driven_estimators",
    "data_driven_estimators",
    "hybrid_estimators",
    "traditional_estimators",
    "fit_estimator",
]

#: supervised estimators whose ``fit`` takes (queries, cards)
_SUPERVISED = {
    "linear", "gbdt", "mlp", "mscn", "pooled_mscn", "robust_mscn",
    "quicksel", "lpce", "alece", "crn", "gl_plus",
}


def traditional_estimators() -> list[str]:
    return ["histogram", "sampling"]


def query_driven_estimators() -> list[str]:
    return ["linear", "gbdt", "mlp", "mscn", "robust_mscn"]


def data_driven_estimators() -> list[str]:
    return ["kde", "naru", "bayesnet", "spn", "fspn", "factorjoin"]


def hybrid_estimators() -> list[str]:
    return ["uae", "glue", "alece"]


def build_estimator(name: str, db: Database, *, budget: str = "fast", seed: int = 0):
    """Construct one estimator by registry-style name.

    ``budget`` is ``"fast"`` (test-suite scale) or ``"full"`` (benchmark
    scale: more epochs / samples).
    """
    full = budget == "full"
    epochs_nn = 80 if full else 30
    epochs_ar = 12 if full else 5
    factories = {
        "histogram": lambda: HistogramEstimator(db),
        # Sampling rate ~5-10%: large enough to be a serious baseline,
        # small enough that its selective-predicate tail blow-ups (the
        # behaviour the benchmark papers report) are visible at this scale.
        "sampling": lambda: SamplingEstimator(db, 150 if full else 100, seed=seed),
        "linear": lambda: LinearQueryEstimator(db),
        "gbdt": lambda: GBDTQueryEstimator(db, seed=seed),
        "mlp": lambda: MLPQueryEstimator(db, epochs=epochs_nn, seed=seed),
        "mscn": lambda: MSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "robust_mscn": lambda: RobustMSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "quicksel": lambda: QuickSelEstimator(db),
        "lpce": lambda: LPCEEstimator(db, seed=seed),
        "pooled_mscn": lambda: PooledMSCNEstimator(db, epochs=epochs_nn, seed=seed),
        "crn": lambda: CRNEstimator(db, epochs=epochs_nn, seed=seed),
        "gl_plus": lambda: GLPlusEstimator(db, epochs=epochs_nn, seed=seed),
        "kde": lambda: KDEEstimator(db, seed=seed),
        "join_kde": lambda: JoinKDEEstimator(db, seed=seed),
        "naru": lambda: NaruEstimator(db, epochs=epochs_ar, seed=seed),
        "neurocard": lambda: NeuroCardEstimator(
            db, epochs=epochs_ar, n_samples=1500 if full else 700, seed=seed
        ),
        "bayesnet": lambda: BayesNetEstimator(db),
        "spn": lambda: SPNEstimator(db, seed=seed),
        "fspn": lambda: FSPNEstimator(db, seed=seed),
        "factorjoin": lambda: FactorJoinEstimator(db, seed=seed),
        "uae": lambda: UAEEstimator(db, epochs=epochs_ar, seed=seed),
        "glue": lambda: GLUEEstimator(db, FSPNEstimator(db, seed=seed)),
        "alece": lambda: ALECEEstimator(db, epochs=epochs_nn * 2, seed=seed),
    }
    if name not in factories:
        raise ValueError(f"unknown estimator {name!r}; valid: {sorted(factories)}")
    return factories[name]()


def fit_estimator(estimator, train_queries: list[Query], train_cards: np.ndarray) -> float:
    """Fit an estimator with whatever supervision it accepts.

    Returns the wall-clock training seconds.  Data-driven models were
    already built at construction; hybrid models take query feedback via
    their own methods.
    """
    t0 = time.perf_counter()
    if hasattr(estimator, "fit_queries"):
        estimator.fit_queries(train_queries, train_cards)
    elif hasattr(estimator, "fit") and getattr(estimator, "name", "") in _SUPERVISED:
        estimator.fit(train_queries, train_cards)
    elif hasattr(estimator, "prebuild"):
        estimator.prebuild(train_queries)
    return time.perf_counter() - t0
