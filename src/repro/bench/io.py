"""Workload persistence: save/load query workloads as SQL text files.

Real benchmark suites ship their workloads as ``.sql`` files (JOB, CEB,
STATS all do); this module gives the repo the same surface so experiments
can be re-run against frozen workloads, and users can hand-edit or diff
them.  One query per line; ``--``-prefixed lines are comments.
"""

from __future__ import annotations

from pathlib import Path

from repro.sql.parser import parse_query
from repro.sql.query import Query

__all__ = ["save_workload", "load_workload"]


def save_workload(path: str | Path, queries: list[Query], header: str = "") -> None:
    """Write queries (one SQL statement per line) to ``path``."""
    lines = []
    if header:
        for ln in header.splitlines():
            lines.append(f"-- {ln}")
    lines.extend(q.to_sql() for q in queries)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_workload(path: str | Path) -> list[Query]:
    """Read a workload written by :func:`save_workload`.

    Blank lines and ``--`` comments are skipped; any unparseable line
    raises with its line number so broken files fail loudly.
    """
    queries: list[Query] = []
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line or line.startswith("--"):
            continue
        try:
            queries.append(parse_query(line))
        except Exception as exc:
            raise ValueError(f"{path}:{lineno}: {exc}") from exc
    return queries
