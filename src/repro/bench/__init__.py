"""Benchmark harness support: metrics, report tables, workload recipes.

The runnable experiments live in ``benchmarks/`` (one per table/figure of
EXPERIMENTS.md); this package provides their shared machinery:

- :mod:`repro.bench.report` -- plain-text table rendering in the shape
  benchmark papers print;
- :mod:`repro.bench.workloads` -- canonical train/test workload recipes
  and the data-drift generator used by the dynamic experiments;
- :mod:`repro.bench.suite` -- estimator/optimizer suite builders so every
  experiment constructs methods consistently.
"""

from repro.bench.report import (
    render_bounds_stats,
    render_cache_stats,
    render_fault_stats,
    render_lifecycle_stats,
    render_rewrite_stats,
    render_shard_stats,
    render_table,
)
from repro.bench.io import load_workload, save_workload
from repro.bench.workloads import (
    WorkloadSpec,
    adversarial_hot_key_drift,
    apply_drift,
    hot_key_probe_queries,
    hot_key_targets,
    make_workloads,
)
from repro.bench.suite import (
    build_estimator,
    data_driven_estimators,
    estimate_workload,
    fit_estimator,
    hybrid_estimators,
    query_driven_estimators,
    traditional_estimators,
)

__all__ = [
    "render_table",
    "render_bounds_stats",
    "render_cache_stats",
    "render_fault_stats",
    "render_lifecycle_stats",
    "render_rewrite_stats",
    "render_shard_stats",
    "save_workload",
    "load_workload",
    "WorkloadSpec",
    "adversarial_hot_key_drift",
    "apply_drift",
    "hot_key_probe_queries",
    "hot_key_targets",
    "make_workloads",
    "build_estimator",
    "query_driven_estimators",
    "data_driven_estimators",
    "hybrid_estimators",
    "traditional_estimators",
    "fit_estimator",
    "estimate_workload",
]
