"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "render_table",
    "render_bounds_stats",
    "render_cache_stats",
    "render_fault_stats",
    "render_lifecycle_stats",
    "render_rewrite_stats",
    "render_shard_stats",
]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str | None = None,
) -> str:
    """Render an aligned text table with a title rule.

    Cells may be any value; floats are formatted adaptively.  Used by all
    ``benchmarks/bench_*.py`` experiments so their output is uniform and
    greppable in ``bench_output.txt``.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [f"\n=== {title} ===" if title else ""]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_cache_stats(
    stats: dict, *, title: str = "cardinality cache", note: str | None = None
) -> str:
    """Render :meth:`repro.optimizer.cardcache.CardinalityCache.stats`.

    One shared shape for every report that surfaces the planner cache's
    hit/miss/eviction counters (P1/P2 benchmarks, serving summaries).
    """
    return render_table(
        title,
        ["entries", "hits", "misses", "evictions", "hit_rate"],
        [(
            int(stats["entries"]),
            int(stats["hits"]),
            int(stats["misses"]),
            int(stats["evictions"]),
            f"{stats['hit_rate']:.3f}",
        )],
        note=note,
    )


def render_fault_stats(
    counters: dict, *, title: str = "fault injection", note: str | None = None
) -> str:
    """Render per-fault-class counters (``{"target.kind": count}``) from a
    :class:`repro.faults.FaultInjector` or the matching ``faults.*``
    telemetry counters.  Meta keys (``total``, ``clock_ms``) are split out
    into the note line so the table stays one row per fault class.
    """
    meta = {k: v for k, v in counters.items() if "." not in k}
    rows = [
        (k.split(".", 1)[0], k.split(".", 1)[1], int(v))
        for k, v in sorted(counters.items())
        if "." in k
    ]
    if not rows:
        rows = [("-", "-", 0)]
    extras = ", ".join(f"{k}={_fmt(float(v))}" for k, v in sorted(meta.items()))
    return render_table(
        title,
        ["target", "kind", "injected"],
        rows,
        note=", ".join(x for x in (extras, note) if x) or None,
    )


def render_bounds_stats(
    stats: dict, *, title: str = "bound guard", note: str | None = None
) -> str:
    """Render :meth:`repro.faults.BoundGuard.stats` output.

    Three row groups in one table: the check/violation funnel (checked,
    observed counts, estimate vs observed-count violations, violation
    rate), the fallback routing counters (fallback served, breaker
    denials, primary/bound errors, breaker trips) and the bound/estimate
    ratio percentiles (how loose the certificates ran).
    """
    order = [
        "checked",
        "counts_observed",
        "estimate_violations",
        "bound_violations",
        "violation_rate",
        "fallback_served",
        "breaker_denied",
        "primary_errors",
        "bound_errors",
        "breaker_trips",
        "ratio_p50",
        "ratio_p90",
        "ratio_p99",
    ]
    rows = [(key, stats[key]) for key in order if key in stats]
    rows.extend((key, stats[key]) for key in sorted(stats) if key not in order)
    if not rows:
        rows = [("-", 0)]
    return render_table(title, ["stat", "value"], rows, note=note)


def render_lifecycle_stats(
    stats: dict, *, title: str = "model lifecycle", note: str | None = None
) -> str:
    """Render :func:`repro.lifecycle.lifecycle_stats` output: a nested
    ``{"scheduler": {...}, "registry": {...}, "store": {...}}`` block as
    one (component, stat, value) row per counter, in sorted order."""
    rows = [
        (component, key, stats[component][key])
        for component in sorted(stats)
        for key in sorted(stats[component])
    ]
    if not rows:
        rows = [("-", "-", 0)]
    return render_table(title, ["component", "stat", "value"], rows, note=note)


def render_rewrite_stats(
    stats: dict, *, title: str = "rewrite leaderboard", note: str | None = None
) -> str:
    """Render :meth:`repro.rewrite.PromotionLeaderboard.stats` output.

    The promotion funnel (submitted -> candidates -> validated ->
    promoted / demoted / rejected) plus the learning-side counters
    (anti-patterns, weight-based skips) as one (stat, value) row each, in
    sorted order -- the same shape as the cache / fault / lifecycle
    renderers.
    """
    rows = [(key, stats[key]) for key in sorted(stats)]
    if not rows:
        rows = [("-", 0)]
    return render_table(title, ["stat", "value"], rows, note=note)


def render_shard_stats(
    fabric, *, title: str = "fabric shards", note: str | None = None
) -> str:
    """Render a :class:`repro.serve.ServingFabric`'s per-shard summary.

    One row per shard -- router assignments, admission funnel (submitted
    -> served, backend errors), virtual span and breaker trips -- plus a
    totals row, so benchmark output shows load balance and failover at a
    glance.  Used by ``benchmarks/bench_p9_fabric.py``.
    """
    router_stats = fabric.router.stats()
    rows = []
    totals = [0, 0, 0, 0, 0.0, 0]
    for shard in fabric.shards:
        st = shard.stats()
        assigned = int(router_stats.get(f"assigned.{shard.name}", 0))
        row = (
            shard.name,
            assigned,
            int(st["submitted"]),
            int(st["served"]),
            int(st["errors"]),
            st["span_ms"],
            int(st["breaker_trips"]),
        )
        rows.append(row)
        totals[0] += assigned
        totals[1] += row[2]
        totals[2] += row[3]
        totals[3] += row[4]
        totals[4] = max(totals[4], row[5])
        totals[5] += row[6]
    rows.append(("total", *totals))
    return render_table(
        title,
        ["shard", "assigned", "submitted", "served", "errors", "span_ms", "trips"],
        rows,
        note=note,
    )
