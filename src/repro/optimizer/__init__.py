"""The traditional Volcano-style query optimizer (the "native" optimizer).

Mirrors PostgreSQL's structure, which the tutorial takes as the seminal
architecture (§2): statistics (equi-depth histograms + most-common values),
an independence-assumption selectivity model, PG-style operator costing over
the shared cost formulas, and plan enumeration by dynamic programming over
connected subsets (with greedy and left-deep variants).

The planner accepts two steering surfaces used by every learned method:

- a pluggable :class:`repro.core.CardinalityEstimator` (cardinality
  injection / learned estimators / Lero's scaling knob);
- a :class:`repro.optimizer.hints.HintSet` enabling/disabling operators
  (Bao's steering knob).
"""

from repro.optimizer.statistics import ColumnStats, DatabaseStats, TableStats
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.optimizer.cardcache import CardinalityCache
from repro.optimizer.cost import PlanCoster
from repro.optimizer.hints import HintSet
from repro.optimizer.plancache import PlanCache, rebind_plan
from repro.optimizer.planner import Optimizer
from repro.optimizer.risk import RISK_MODES, RiskCard, RiskCoster, RiskLambdaTuner

__all__ = [
    "RISK_MODES",
    "RiskCard",
    "RiskCoster",
    "RiskLambdaTuner",
    "ColumnStats",
    "TableStats",
    "DatabaseStats",
    "TraditionalCardinalityEstimator",
    "CardinalityCache",
    "PlanCache",
    "rebind_plan",
    "PlanCoster",
    "HintSet",
    "Optimizer",
]
