"""Cross-plan cardinality cache.

Plan enumeration asks the cardinality estimator about the same sub-queries
over and over: the DP enumerator visits every connected subset once per
planning, and the e2e methods re-plan the *same* query many times -- once
per hint-set arm in Bao, once per scaling factor in Lero.  The sub-query
cardinalities do not change across those plannings, so a shared
:class:`CardinalityCache` turns all but the first estimation of each
(estimator-state, sub-query) pair into a dictionary lookup.

Keys pair :func:`repro.core.interfaces.estimator_cache_tag` (instance +
``estimates_version``, unwrapping steering wrappers) with the query's
:func:`repro.sql.query.query_hash` -- the same canonical-text digest the
deployment manager's canary split and the experience store's dedup use, so
the repository has exactly one query-identity scheme.  Refits, feedback,
injected overrides and data drift all invalidate naturally -- stale
entries are simply never looked up again and age out of the LRU ring.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.sql.query import Query, query_hash

__all__ = ["CardinalityCache"]


class CardinalityCache:
    """Bounded LRU map from (estimator tag, sub-query) to cardinality.

    Parameters
    ----------
    capacity:
        Maximum number of entries; least-recently-used entries are evicted
        beyond it.  The default comfortably holds every connected subset of
        the benchmark workloads times a handful of estimator states.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def lookup(self, tag: tuple, query: Query) -> float | None:
        """Cached cardinality, or None; counts a hit or a miss either way."""
        key = (tag, query_hash(query))
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def insert(self, tag: tuple, query: Query, value: float) -> None:
        key = (tag, query_hash(query))
        self._entries[key] = float(value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compute(
        self, tag: tuple, query: Query, compute: Callable[[Query], float]
    ) -> float:
        value = self.lookup(tag, query)
        if value is None:
            value = float(compute(query))
            self.insert(tag, query, value)
        return value

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the session)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"CardinalityCache(entries={len(self._entries)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )
