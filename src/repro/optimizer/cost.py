"""Plan costing with *estimated* cardinalities (the optimizer's belief).

:class:`PlanCoster` evaluates the shared operator cost formulas on the
cardinalities produced by any :class:`repro.core.CardinalityEstimator`.
Because the simulator evaluates the same formulas on true cardinalities,
``coster.cost(plan)`` equals the plan's real cost exactly when the estimates
are exact -- estimation error is the sole source of plan-choice error.
"""

from __future__ import annotations

from repro.core.interfaces import CardinalityEstimator
from repro.engine.cost_formulas import CostConstants, OperatorCosts
from repro.engine.plans import JoinMethod, JoinNode, Plan, PlanNode, ScanMethod, ScanNode
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["PlanCoster"]


class PlanCoster:
    """Estimated-cost evaluation of plans and plan fragments."""

    def __init__(
        self,
        db: Database,
        estimator: CardinalityEstimator,
        constants: CostConstants | None = None,
    ) -> None:
        self.db = db
        self.estimator = estimator
        self.ops = OperatorCosts(constants)

    # -- cardinalities ------------------------------------------------------------

    def subquery_cardinality(self, query: Query, tables: frozenset[str]) -> float:
        return max(self.estimator.estimate(query.subquery(tables)), 0.0)

    def _index_fetched(self, node: ScanNode) -> float:
        if not node.predicates:
            return float(self.db.table(node.table).n_rows)
        single = Query((node.table,), (), (node.predicates[0],))
        return max(self.estimator.estimate(single), 0.0)

    # -- operator costs -------------------------------------------------------------

    def scan_cost(self, node: ScanNode) -> float:
        base_rows = self.db.table(node.table).n_rows
        if node.method is ScanMethod.SEQ:
            return self.ops.seq_scan(base_rows, len(node.predicates))
        return self.ops.index_scan(
            base_rows, self._index_fetched(node), len(node.predicates)
        )

    def join_operator_cost(
        self,
        method: JoinMethod,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        right_node: PlanNode,
    ) -> float:
        """Cost of one join operator given (estimated) input/output sizes."""
        if method is JoinMethod.HASH:
            return self.ops.hash_join(left_rows, right_rows, out_rows)
        if method is JoinMethod.MERGE:
            return self.ops.merge_join(left_rows, right_rows, out_rows)
        if isinstance(right_node, ScanNode):
            inner_base = self.db.table(right_node.table).n_rows
            return self.ops.nested_loop_indexed(left_rows, inner_base, out_rows)
        return self.ops.nested_loop_naive(left_rows, right_rows, out_rows)

    # -- whole-plan cost --------------------------------------------------------------

    def cost(self, plan: Plan) -> float:
        """Total estimated cost of the plan (sum of node costs)."""
        total = 0.0
        for node in plan.walk():
            if isinstance(node, ScanNode):
                total += self.scan_cost(node)
            else:
                assert isinstance(node, JoinNode)
                total += self.join_operator_cost(
                    node.method,
                    self.subquery_cardinality(plan.query, node.left.tables),
                    self.subquery_cardinality(plan.query, node.right.tables),
                    self.subquery_cardinality(plan.query, node.tables),
                    node.right,
                )
        return total

    def node_cardinalities(self, plan: Plan) -> dict[PlanNode, float]:
        """Estimated output cardinality of every node (for featurization)."""
        return {
            node: self.subquery_cardinality(plan.query, node.tables)
            for node in plan.walk()
        }
