"""Plan costing with *estimated* cardinalities (the optimizer's belief).

:class:`PlanCoster` evaluates the shared operator cost formulas on the
cardinalities produced by any :class:`repro.core.CardinalityEstimator`.
Because the simulator evaluates the same formulas on true cardinalities,
``coster.cost(plan)`` equals the plan's real cost exactly when the estimates
are exact -- estimation error is the sole source of plan-choice error.

Costers can share a :class:`repro.optimizer.CardinalityCache`: every
sub-query estimate is answered from the cache when possible and batched
through :func:`repro.core.interfaces.batch_estimate` when the enumerator
primes many subsets at once (:meth:`PlanCoster.subquery_cardinalities`).
"""

from __future__ import annotations

from repro.cardest.base import sanitize_estimate, sanitize_estimates
from repro.core.interfaces import (
    CardinalityEstimator,
    batch_estimate,
    estimator_cache_tag,
)
from repro.engine.cost_formulas import CostConstants, OperatorCosts
from repro.engine.plans import JoinMethod, JoinNode, Plan, PlanNode, ScanMethod, ScanNode
from repro.optimizer.cardcache import CardinalityCache
from repro.sql.query import Query
from repro.storage.catalog import Database

__all__ = ["PlanCoster"]


class PlanCoster:
    """Estimated-cost evaluation of plans and plan fragments.

    When ``cache`` is given, every cardinality the coster needs is looked
    up in (and inserted into) it, keyed by the estimator's current state
    tag and the database's ``data_version`` -- so the cache can safely
    outlive a single planning and be shared across costers wrapping
    different steering wrappers around the same base estimator.
    """

    def __init__(
        self,
        db: Database,
        estimator: CardinalityEstimator,
        constants: CostConstants | None = None,
        cache: CardinalityCache | None = None,
    ) -> None:
        self.db = db
        self.estimator = estimator
        self.ops = OperatorCosts(constants)
        self.cache = cache

    # -- cardinalities ------------------------------------------------------------

    def _cache_tag(self) -> tuple:
        return (estimator_cache_tag(self.estimator), self.db.data_version)

    def estimate_cardinality(self, query: Query) -> float:
        """Cached (if enabled) estimate of one sub-query.

        Estimates are sanitized centrally (:func:`repro.cardest.base.
        sanitize_estimate`) before use or caching, so arbitrary estimator
        output -- NaN, Inf, negatives -- can never reach cost arithmetic.
        """
        if self.cache is None:
            return sanitize_estimate(self.estimator.estimate(query))
        return self.cache.get_or_compute(
            self._cache_tag(),
            query,
            lambda q: sanitize_estimate(self.estimator.estimate(q)),
        )

    def subquery_cardinality(self, query: Query, tables: frozenset[str]) -> float:
        return self.estimate_cardinality(query.subquery(tables))

    def subquery_cardinalities(
        self, query: Query, subsets: list[frozenset[str]]
    ) -> dict[frozenset[str], float]:
        """Cardinalities for many subsets of one query at once.

        Answers what it can from the cache and runs a single
        :func:`batch_estimate` call over the misses -- this is how the DP
        enumerator primes all connected subsets with one featurization pass
        and one model forward pass before its inner loop runs.
        """
        out: dict[frozenset[str], float] = {}
        tag = self._cache_tag() if self.cache is not None else None
        misses: list[frozenset[str]] = []
        miss_queries: list[Query] = []
        for tables in subsets:
            if tables in out:
                continue
            sub = query.subquery(tables)
            hit = self.cache.lookup(tag, sub) if self.cache is not None else None
            if hit is not None:
                out[tables] = hit
            else:
                out[tables] = -1.0  # placeholder, overwritten below
                misses.append(tables)
                miss_queries.append(sub)
        if misses:
            values = sanitize_estimates(batch_estimate(self.estimator, miss_queries))
            for tables, sub, value in zip(misses, miss_queries, values):
                out[tables] = float(value)
                if self.cache is not None:
                    self.cache.insert(tag, sub, float(value))
        return out

    def _index_fetched(self, node: ScanNode) -> float:
        if not node.predicates:
            return float(self.db.table(node.table).n_rows)
        single = Query((node.table,), (), (node.predicates[0],))
        return self.estimate_cardinality(single)

    # -- operator costs -------------------------------------------------------------

    def scan_cost(self, node: ScanNode) -> float:
        base_rows = self.db.table(node.table).n_rows
        if node.method is ScanMethod.SEQ:
            return self.ops.seq_scan(base_rows, len(node.predicates))
        return self.ops.index_scan(
            base_rows, self._index_fetched(node), len(node.predicates)
        )

    def join_operator_cost(
        self,
        method: JoinMethod,
        left_rows: float,
        right_rows: float,
        out_rows: float,
        right_node: PlanNode,
    ) -> float:
        """Cost of one join operator given (estimated) input/output sizes."""
        if method is JoinMethod.HASH:
            return self.ops.hash_join(left_rows, right_rows, out_rows)
        if method is JoinMethod.MERGE:
            return self.ops.merge_join(left_rows, right_rows, out_rows)
        if isinstance(right_node, ScanNode):
            inner_base = self.db.table(right_node.table).n_rows
            return self.ops.nested_loop_indexed(left_rows, inner_base, out_rows)
        return self.ops.nested_loop_naive(left_rows, right_rows, out_rows)

    # -- whole-plan cost --------------------------------------------------------------

    def cost(self, plan: Plan) -> float:
        """Total estimated cost of the plan (sum of node costs)."""
        total = 0.0
        for node in plan.walk():
            if isinstance(node, ScanNode):
                total += self.scan_cost(node)
            else:
                assert isinstance(node, JoinNode)
                total += self.join_operator_cost(
                    node.method,
                    self.subquery_cardinality(plan.query, node.left.tables),
                    self.subquery_cardinality(plan.query, node.right.tables),
                    self.subquery_cardinality(plan.query, node.tables),
                    node.right,
                )
        return total

    def node_cardinalities(self, plan: Plan) -> dict[PlanNode, float]:
        """Estimated output cardinality of every node (for featurization)."""
        return {
            node: self.subquery_cardinality(plan.query, node.tables)
            for node in plan.walk()
        }
