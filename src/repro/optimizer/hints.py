"""Hint sets: Bao-style operator enable/disable flags.

A :class:`HintSet` is the planner's steering surface used by Bao [37] and
AutoSteer [1]: each flag allows or forbids one operator family during plan
enumeration.  :meth:`HintSet.bao_arms` returns the standard arm collection a
Bao-style optimizer chooses among.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.plans import JoinMethod, ScanMethod

__all__ = ["HintSet"]


@dataclass(frozen=True)
class HintSet:
    """Operator-family switches honoured by the plan enumerator."""

    enable_hash_join: bool = True
    enable_nested_loop: bool = True
    enable_merge_join: bool = True
    enable_seq_scan: bool = True
    enable_index_scan: bool = True

    def __post_init__(self) -> None:
        if not (self.enable_hash_join or self.enable_nested_loop or self.enable_merge_join):
            raise ValueError("at least one join method must remain enabled")
        if not (self.enable_seq_scan or self.enable_index_scan):
            raise ValueError("at least one scan method must remain enabled")

    @property
    def join_methods(self) -> tuple[JoinMethod, ...]:
        methods = []
        if self.enable_hash_join:
            methods.append(JoinMethod.HASH)
        if self.enable_nested_loop:
            methods.append(JoinMethod.NESTED_LOOP)
        if self.enable_merge_join:
            methods.append(JoinMethod.MERGE)
        return tuple(methods)

    @property
    def scan_methods(self) -> tuple[ScanMethod, ...]:
        methods = []
        if self.enable_seq_scan:
            methods.append(ScanMethod.SEQ)
        if self.enable_index_scan:
            methods.append(ScanMethod.INDEX)
        return tuple(methods)

    def name(self) -> str:
        """Short stable identifier, e.g. ``hash+nlj+merge/seq+idx``."""
        joins = "+".join(
            n
            for n, on in (
                ("hash", self.enable_hash_join),
                ("nlj", self.enable_nested_loop),
                ("merge", self.enable_merge_join),
            )
            if on
        )
        scans = "+".join(
            n
            for n, on in (
                ("seq", self.enable_seq_scan),
                ("idx", self.enable_index_scan),
            )
            if on
        )
        return f"{joins}/{scans}"

    @classmethod
    def default(cls) -> "HintSet":
        return cls()

    @classmethod
    def bao_arms(cls) -> list["HintSet"]:
        """The hint-set arms a Bao-style optimizer selects among.

        Bao's arms are subsets of disabled operators; we use the standard
        collection: all operators, each single join method, join-method
        pairs, and scan restrictions -- 12 valid arms.
        """
        arms: list[HintSet] = [cls()]
        # Single join methods.
        arms.append(cls(enable_nested_loop=False, enable_merge_join=False))
        arms.append(cls(enable_hash_join=False, enable_merge_join=False))
        arms.append(cls(enable_hash_join=False, enable_nested_loop=False))
        # Join-method pairs.
        arms.append(cls(enable_merge_join=False))
        arms.append(cls(enable_nested_loop=False))
        arms.append(cls(enable_hash_join=False))
        # Scan restrictions combined with the most impactful join settings.
        arms.append(cls(enable_index_scan=False))
        arms.append(cls(enable_seq_scan=False))
        arms.append(cls(enable_nested_loop=False, enable_index_scan=False))
        arms.append(cls(enable_merge_join=False, enable_seq_scan=False))
        arms.append(cls(enable_hash_join=False, enable_index_scan=False))
        return arms

    def without(self, **flags: bool) -> "HintSet":
        """Return a copy with the given flags replaced."""
        return replace(self, **flags)
