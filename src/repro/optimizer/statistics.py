"""Optimizer statistics: equi-depth histograms, MCVs and distinct counts.

The classic ANALYZE-style summaries PostgreSQL keeps per column, built once
over the data and refreshable after appends (the drift experiments exercise
stale-statistics behaviour by *not* refreshing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.storage.catalog import Database
from repro.storage.table import Table

__all__ = ["ColumnStats", "TableStats", "DatabaseStats"]


@dataclass
class ColumnStats:
    """Per-column summary: bounds, NDV, MCVs and an equi-depth histogram.

    ``histogram_bounds`` holds ``n_bins + 1`` edges of equi-depth buckets
    computed over the non-MCV values; ``mcv_values``/``mcv_freqs`` hold the
    most common values and their frequency *fractions* (of all rows).
    """

    n_rows: int
    n_distinct: int
    min_value: float
    max_value: float
    mcv_values: np.ndarray
    mcv_freqs: np.ndarray
    histogram_bounds: np.ndarray
    #: fraction of rows not covered by the MCV list
    non_mcv_fraction: float

    @classmethod
    def build(cls, values: np.ndarray, n_bins: int = 32, n_mcv: int = 10) -> "ColumnStats":
        values = np.asarray(values)
        n = values.shape[0]
        if n == 0:
            return cls(0, 0, 0.0, 0.0, np.zeros(0), np.zeros(0), np.zeros(0), 0.0)
        uniq, counts = np.unique(values, return_counts=True)
        order = np.argsort(counts)[::-1]
        take = min(n_mcv, uniq.shape[0])
        mcv_idx = order[:take]
        mcv_values = uniq[mcv_idx].astype(float)
        mcv_freqs = counts[mcv_idx] / n
        rest_mask = ~np.isin(values, uniq[mcv_idx])
        rest = np.sort(values[rest_mask].astype(float))
        if rest.size >= 2:
            qs = np.linspace(0.0, 1.0, n_bins + 1)
            bounds = np.quantile(rest, qs)
        elif rest.size == 1:
            bounds = np.array([rest[0], rest[0]])
        else:
            bounds = np.zeros(0)
        return cls(
            n_rows=n,
            n_distinct=int(uniq.shape[0]),
            min_value=float(values.min()),
            max_value=float(values.max()),
            mcv_values=mcv_values,
            mcv_freqs=mcv_freqs,
            histogram_bounds=bounds,
            non_mcv_fraction=float(rest_mask.mean()),
        )

    # -- selectivity primitives ---------------------------------------------------

    def eq_selectivity(self, value: float) -> float:
        """Selectivity of ``col = value``.

        Literals outside the column's ``[min_value, max_value]`` domain
        match no rows and estimate 0 -- the non-MCV fallback only applies
        to in-domain values the MCV list does not cover.
        """
        if self.n_rows == 0:
            return 0.0
        if value < self.min_value or value > self.max_value:
            return 0.0
        hit = np.nonzero(self.mcv_values == value)[0]
        if hit.size:
            return float(self.mcv_freqs[hit[0]])
        n_non_mcv_distinct = max(self.n_distinct - self.mcv_values.shape[0], 1)
        return self.non_mcv_fraction / n_non_mcv_distinct

    def range_selectivity(
        self,
        lo: float,
        hi: float,
        *,
        inclusive_lo: bool = True,
        inclusive_hi: bool = True,
    ) -> float:
        """Selectivity of ``lo <= col <= hi`` (either side may be +/-inf).

        ``inclusive_lo``/``inclusive_hi`` mark each endpoint closed (the
        default) or open, so strict ``<``/``>`` predicates are represented
        exactly instead of via an epsilon shift of the literal.  Openness
        only matters for point masses sitting exactly on an endpoint: MCVs
        and degenerate histogram buckets on an open endpoint are excluded;
        the continuous within-bucket interpolation is unaffected.
        """
        if self.n_rows == 0:
            return 0.0
        if lo > hi or (lo == hi and not (inclusive_lo and inclusive_hi)):
            return 0.0

        def point_in_range(p: np.ndarray | float):
            above = (p > lo) | ((p == lo) & inclusive_lo)
            below = (p < hi) | ((p == hi) & inclusive_hi)
            return above & below

        sel = 0.0
        # MCV contribution: exact point masses.
        if self.mcv_values.size:
            in_range = point_in_range(self.mcv_values)
            sel += float(self.mcv_freqs[in_range].sum())
        # Histogram contribution: linear interpolation within buckets.
        bounds = self.histogram_bounds
        if bounds.size >= 2 and self.non_mcv_fraction > 0:
            n_bins = bounds.size - 1
            frac = 0.0
            for b in range(n_bins):
                b_lo, b_hi = bounds[b], bounds[b + 1]
                if b_hi < lo or b_lo > hi:
                    continue
                if b_hi == b_lo:
                    # Degenerate bucket: a point mass at b_lo.  It counts
                    # only when that point actually satisfies the (possibly
                    # open) interval -- merely touching an excluded
                    # endpoint contributes nothing.
                    if bool(point_in_range(float(b_lo))):
                        frac += 1.0
                    continue
                covered_lo = max(b_lo, lo)
                covered_hi = min(b_hi, hi)
                frac += max(covered_hi - covered_lo, 0.0) / (b_hi - b_lo)
            sel += (frac / n_bins) * self.non_mcv_fraction
        return min(max(sel, 0.0), 1.0)


@dataclass
class TableStats:
    """Statistics for all columns of one table."""

    table: str
    n_rows: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def build(cls, table: Table, n_bins: int = 32, n_mcv: int = 10) -> "TableStats":
        stats = cls(table=table.name, n_rows=table.n_rows)
        for name in table.column_names:
            stats.columns[name] = ColumnStats.build(
                table.values(name), n_bins=n_bins, n_mcv=n_mcv
            )
        return stats

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"no statistics for column {self.table}.{name}"
            ) from None


class DatabaseStats:
    """ANALYZE output for a whole database."""

    def __init__(self, tables: dict[str, TableStats]) -> None:
        self.tables = tables

    @classmethod
    def build(cls, db: Database, n_bins: int = 32, n_mcv: int = 10) -> "DatabaseStats":
        return cls(
            {
                name: TableStats.build(table, n_bins=n_bins, n_mcv=n_mcv)
                for name, table in db.tables.items()
            }
        )

    def table(self, name: str) -> TableStats:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"no statistics for table {name!r}") from None

    def refresh(self, db: Database, tables: list[str] | None = None) -> None:
        """Re-ANALYZE the given tables (all when None); used after appends."""
        names = tables if tables is not None else list(db.tables)
        for name in names:
            self.tables[name] = TableStats.build(db.table(name))
