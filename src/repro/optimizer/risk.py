"""Risk-bounded plan costing: expected cost blended with worst-case cost.

Regressions, not averages, block deployment of learned planners -- a plan
that is optimal under a (learned, possibly wrong) point estimate can be
catastrophic under the true cardinalities.  Risk-bounded planning costs
every candidate under a *certified upper bound* (:mod:`repro.cardest.
bounds`) as well as the point estimate, and picks the plan minimizing

    ``(1 - risk_lambda) * cost(expected) + risk_lambda * cost(worst)``

``risk_lambda=1`` is pure worst-case minimization (the pessimistic
optimizer of the MOLP line of work); intermediate values trade average
performance against tail risk.

The integration is deliberately enumeration-free: ``enumerate_dp`` and
``enumerate_greedy`` treat cardinalities opaquely -- they fetch them from
the coster and hand them straight back to ``join_operator_cost`` --
so a :class:`RiskCoster` can thread a :class:`RiskCard` (expected, worst)
pair through the existing DP/greedy machinery without touching either
algorithm.  Both underlying costers share one
:class:`~repro.optimizer.CardinalityCache`; their estimator tags differ,
so expected and bound cardinalities never collide.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.optimizer.cost import PlanCoster

__all__ = ["RiskCard", "RiskCoster", "RiskLambdaTuner", "RISK_MODES"]

#: the planner's accepted ``risk=`` values
RISK_MODES = ("expected", "worst_case", "blended")


@dataclass(frozen=True)
class RiskCard:
    """A cardinality under both beliefs: point estimate and certified bound."""

    expected: float
    worst: float


def _expected(value) -> float:
    return value.expected if isinstance(value, RiskCard) else float(value)


def _worst(value) -> float:
    return value.worst if isinstance(value, RiskCard) else float(value)


class RiskCoster:
    """A :class:`PlanCoster`-shaped facade over an (expected, bound) pair.

    Cardinality queries return :class:`RiskCard` pairs; cost queries
    return the lambda-blend of the two costers' answers, each evaluated
    on its own belief.  Drop-in for every coster call the enumerators
    make (``subquery_cardinalities`` / ``subquery_cardinality`` /
    ``scan_cost`` / ``join_operator_cost`` / ``cost``).
    """

    def __init__(
        self,
        expected: PlanCoster,
        bound: PlanCoster,
        risk_lambda: float = 1.0,
    ) -> None:
        risk_lambda = float(risk_lambda)
        if not 0.0 <= risk_lambda <= 1.0:
            raise ConfigError("risk_lambda must be in [0, 1]")
        self.expected = expected
        self.bound = bound
        self.risk_lambda = risk_lambda
        self.db = expected.db
        self.ops = expected.ops
        self.cache = expected.cache

    def _blend(self, expected_cost: float, worst_cost: float) -> float:
        lam = self.risk_lambda
        return (1.0 - lam) * expected_cost + lam * worst_cost

    # -- cardinalities (RiskCard-valued) --------------------------------------------

    def estimate_cardinality(self, query) -> RiskCard:
        return RiskCard(
            self.expected.estimate_cardinality(query),
            self.bound.estimate_cardinality(query),
        )

    def subquery_cardinality(self, query, tables) -> RiskCard:
        return RiskCard(
            self.expected.subquery_cardinality(query, tables),
            self.bound.subquery_cardinality(query, tables),
        )

    def subquery_cardinalities(self, query, subsets) -> dict:
        exp = self.expected.subquery_cardinalities(query, subsets)
        wor = self.bound.subquery_cardinalities(query, subsets)
        return {tables: RiskCard(exp[tables], wor[tables]) for tables in exp}

    def node_cardinalities(self, plan) -> dict:
        return {
            node: self.subquery_cardinality(plan.query, node.tables)
            for node in plan.walk()
        }

    # -- costs (blended) --------------------------------------------------------------

    def scan_cost(self, node) -> float:
        return self._blend(
            self.expected.scan_cost(node), self.bound.scan_cost(node)
        )

    def join_operator_cost(
        self, method, left_rows, right_rows, out_rows, right_node
    ) -> float:
        expected_cost = self.expected.join_operator_cost(
            method,
            _expected(left_rows),
            _expected(right_rows),
            _expected(out_rows),
            right_node,
        )
        worst_cost = self.bound.join_operator_cost(
            method,
            _worst(left_rows),
            _worst(right_rows),
            _worst(out_rows),
            right_node,
        )
        return self._blend(expected_cost, worst_cost)

    def cost(self, plan) -> float:
        return self._blend(self.expected.cost(plan), self.bound.cost(plan))


class RiskLambdaTuner:
    """Closed-loop ``risk_lambda`` control from observed bound violations.

    The blend weight in risk-bounded planning is a trust dial: how much
    should the planner believe the point estimator over the certified
    bound?  The serving-side :class:`~repro.faults.BoundGuard` measures
    exactly that trust empirically -- its violation rate is the fraction
    of served estimates (and audited counts) that broke their
    certificates.  The tuner closes the loop: every ``window`` new guard
    checks it compares the *windowed* violation rate against
    ``target_rate`` and either raises ``optimizer.risk_lambda`` by
    ``step`` (the estimator is lying; plan more pessimistically) or
    decays it by ``decay`` (a clean window; drift back toward expected-
    cost planning).  The planner reads ``risk_lambda`` per ``plan()``
    call, so adjustments take effect on the very next planning.

    Deterministic: state advances only on :meth:`tick` (the deployment
    calls it once per served query, inside the single-writer core), and
    every adjustment is a pure function of the guard's counters.
    """

    def __init__(
        self,
        optimizer,
        bound_guard,
        *,
        target_rate: float = 0.05,
        window: int = 25,
        step: float = 0.2,
        decay: float = 0.05,
        min_lambda: float = 0.0,
        max_lambda: float = 1.0,
        telemetry=None,
    ) -> None:
        if not 0.0 <= target_rate <= 1.0:
            raise ConfigError("target_rate must be in [0, 1]")
        if window < 1:
            raise ConfigError("window must be >= 1")
        if step <= 0 or decay < 0:
            raise ConfigError("need step > 0 and decay >= 0")
        if not 0.0 <= min_lambda <= max_lambda <= 1.0:
            raise ConfigError("need 0 <= min_lambda <= max_lambda <= 1")
        self.optimizer = optimizer
        self.bound_guard = bound_guard
        self.target_rate = float(target_rate)
        self.window = int(window)
        self.step = float(step)
        self.decay = float(decay)
        self.min_lambda = float(min_lambda)
        self.max_lambda = float(max_lambda)
        self.telemetry = telemetry
        self.windows_observed = 0
        self.raises = 0
        self.decays = 0
        self._checks_at_window = self._guard_checks()
        self._violations_at_window = self.bound_guard.violations

    def _guard_checks(self) -> int:
        return self.bound_guard.checked + self.bound_guard.counts_observed

    def tick(self) -> float:
        """Advance the control loop; returns the current ``risk_lambda``.

        No-op until the guard has accumulated ``window`` checks since the
        previous adjustment.
        """
        checks = self._guard_checks()
        new_checks = checks - self._checks_at_window
        if new_checks < self.window:
            return self.optimizer.risk_lambda
        rate = (
            self.bound_guard.violations - self._violations_at_window
        ) / new_checks
        self._checks_at_window = checks
        self._violations_at_window = self.bound_guard.violations
        self.windows_observed += 1
        before = float(self.optimizer.risk_lambda)
        if rate > self.target_rate:
            after = min(self.max_lambda, before + self.step)
            self.raises += 1
            reason = "violations"
        else:
            after = max(self.min_lambda, before - self.decay)
            self.decays += 1
            reason = "clean_window"
        if after != before:
            self.optimizer.risk_lambda = after
            if self.telemetry is not None:
                self.telemetry.incr(f"risk_tuner.{reason}")
                self.telemetry.event(
                    "risk_lambda_adjusted",
                    reason=reason,
                    window_rate=float(rate),
                    from_lambda=before,
                    to_lambda=after,
                )
        return float(self.optimizer.risk_lambda)

    def stats(self) -> dict[str, float]:
        """Gauge-friendly snapshot (numbers only)."""
        return {
            "risk_lambda": float(self.optimizer.risk_lambda),
            "windows_observed": float(self.windows_observed),
            "raises": float(self.raises),
            "decays": float(self.decays),
            "target_rate": float(self.target_rate),
        }
