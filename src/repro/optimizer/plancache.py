"""Parameterized plan cache: reuse compiled plans across literal bindings.

Planning dominates the serving path for short queries -- exactly the
overhead the surveyed learned optimizers are criticized for adding.  Most
production workloads are *parameterized*: the same query template arrives
over and over with different literals, and join-order/physical-method
decisions rarely change with the literals.  :class:`PlanCache` exploits
that: plans are cached under the query's literal-free
:attr:`~repro.sql.query.Query.template_key` and replayed for new bindings
by substituting the fresh predicates into the cached tree's scan nodes
(:func:`rebind_plan`) -- join structure, methods and conditions are
literal-free and carry over unchanged.

Cache keys additionally pin the optimizer state
(:func:`repro.core.interfaces.estimator_cache_tag`, so refits/feedback
invalidate naturally) and the database's ``data_version`` (so data drift
invalidates naturally).  Deployment-stage changes call
:meth:`PlanCache.invalidate` explicitly -- a stage flip swaps which
optimizer serves, and plans chosen by the previous stage must not leak
into the next one's measurements.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.engine.plans import JoinNode, Plan, PlanNode, ScanNode
from repro.sql.query import Query

__all__ = ["PlanCache", "rebind_plan"]


def rebind_plan(plan: Plan, query: Query) -> Plan:
    """Re-target a cached plan at a new binding of the same template.

    Scan nodes get the new query's predicates on their table; join nodes
    (structure, methods, conditions) are literal-free and shared as-is.
    ``query`` must have the same ``template_key`` as ``plan.query`` --
    same tables and joins, so the rebuilt tree is valid by construction.
    """
    if plan.query == query:
        return plan
    if plan.query.template_key != query.template_key:
        raise ValueError(
            f"cannot rebind plan for template {plan.query.template_key!r} "
            f"to query with template {query.template_key!r}"
        )

    def rebuild(node: PlanNode) -> PlanNode:
        if isinstance(node, ScanNode):
            return ScanNode(
                table=node.table,
                method=node.method,
                predicates=query.predicates_on(node.table),
            )
        assert isinstance(node, JoinNode)
        return JoinNode(
            left=rebuild(node.left),
            right=rebuild(node.right),
            method=node.method,
            conditions=node.conditions,
        )

    return Plan(query=query, root=rebuild(plan.root))


class PlanCache:
    """Bounded LRU from (template, optimizer tag, data version) to plans.

    Follows the :class:`~repro.optimizer.cardcache.CardinalityCache`
    reporting idiom: hit/miss/eviction counters, a ``stats()`` dict in
    ``render_cache_stats`` shape (plus ``invalidations``), counters that
    survive :meth:`clear`/:meth:`invalidate`.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, Plan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.last_invalidation_reason: str | None = None

    @staticmethod
    def _key(query: Query, tag: tuple, data_version: int) -> tuple:
        return (query.template_key, tag, data_version)

    def lookup(self, query: Query, tag: tuple, data_version: int) -> Plan | None:
        """Cached plan rebound to ``query``, or None; counts hit or miss."""
        key = self._key(query, tag, data_version)
        plan = self._entries.get(key)
        if plan is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        return rebind_plan(plan, query)

    def insert(self, query: Query, tag: tuple, data_version: int, plan: Plan) -> None:
        key = self._key(query, tag, data_version)
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_plan(
        self,
        query: Query,
        tag: tuple,
        data_version: int,
        plan_fn: Callable[[Query], Plan],
    ) -> tuple[Plan, bool]:
        """``(plan, was_hit)``: the cached plan rebound, or a fresh one."""
        plan = self.lookup(query, tag, data_version)
        if plan is not None:
            return plan, True
        plan = plan_fn(query)
        self.insert(query, tag, data_version, plan)
        return plan, False

    def invalidate(self, reason: str | None = None) -> None:
        """Drop every entry (stage change, manual flush); keep counters."""
        self._entries.clear()
        self.invalidations += 1
        self.last_invalidation_reason = reason

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
        }

    def clear(self) -> None:
        """Drop all entries (counters are kept; they describe the session)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PlanCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
