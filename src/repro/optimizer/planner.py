"""Plan enumeration and the native optimizer facade.

Enumeration algorithms (§2, plan enumerator component):

- **Dynamic programming** over connected subsets (DPsub, the PostgreSQL /
  Volcano classic): optimal w.r.t. the estimated cost model, considering
  bushy trees, all enabled join methods and both join orientations.
- **Greedy**: repeatedly joins the cheapest pair -- the fast fallback
  traditional systems use for large queries.
- **Left-deep DP**: restricts to left-deep trees (the search space the RL
  join-order methods of §2.1.3 operate in).

:class:`Optimizer` packages stats + estimator + coster + enumeration behind
the two steering surfaces (estimator swap, hint sets).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.interfaces import CardinalityEstimator
from repro.engine.cost_formulas import CostConstants
from repro.engine.plans import (
    JoinMethod,
    JoinNode,
    Plan,
    PlanNode,
    ScanMethod,
    ScanNode,
)
from repro.optimizer.cardcache import CardinalityCache
from repro.optimizer.cost import PlanCoster
from repro.optimizer.hints import HintSet
from repro.optimizer.risk import RISK_MODES, RiskCoster
from repro.optimizer.statistics import DatabaseStats
from repro.optimizer.traditional import TraditionalCardinalityEstimator
from repro.sql.query import Join, Query
from repro.storage.catalog import Database

__all__ = ["Optimizer", "enumerate_dp", "enumerate_greedy"]


def _join_conditions_between(
    query: Query, left: frozenset[str], right: frozenset[str]
) -> tuple[Join, ...]:
    return tuple(
        j
        for j in query.joins
        if (j.left.table in left and j.right.table in right)
        or (j.left.table in right and j.right.table in left)
    )


def _best_scan(
    query: Query, table: str, coster: PlanCoster, hints: HintSet
) -> tuple[ScanNode, float]:
    """Cheapest allowed scan for one table."""
    preds = query.predicates_on(table)
    candidates = []
    for method in hints.scan_methods:
        if method is ScanMethod.INDEX and not preds:
            continue  # index scans need a driving predicate
        node = ScanNode(table=table, method=method, predicates=preds)
        candidates.append((node, coster.scan_cost(node)))
    if not candidates:
        # Index-only hints on a predicate-less table: fall back to seq scan,
        # as real systems do rather than failing the query.
        node = ScanNode(table=table, method=ScanMethod.SEQ, predicates=preds)
        candidates.append((node, coster.scan_cost(node)))
    return min(candidates, key=lambda c: c[1])


def _best_join(
    query: Query,
    left: tuple[PlanNode, float],
    right: tuple[PlanNode, float],
    conditions: tuple[Join, ...],
    coster: PlanCoster,
    hints: HintSet,
    card_of: dict[frozenset[str], float],
    *,
    allow_swap: bool = True,
) -> tuple[JoinNode, float] | None:
    """Cheapest allowed join combining the two sub-plans.

    ``allow_swap=False`` pins the orientation (needed by left-deep
    enumeration, where the inner/right side must stay a base relation).
    """
    best: tuple[JoinNode, float] | None = None
    out_card = card_of[left[0].tables | right[0].tables]
    orientations = ((left, right), (right, left)) if allow_swap else ((left, right),)
    for (a, ca), (b, cb) in orientations:
        for method in hints.join_methods:
            op_cost = coster.join_operator_cost(
                method, card_of[a.tables], card_of[b.tables], out_card, b
            )
            total = ca + cb + op_cost
            if best is None or total < best[1]:
                best = (JoinNode(a, b, method, conditions), total)
    return best


def enumerate_dp(
    query: Query,
    coster: PlanCoster,
    hints: HintSet | None = None,
    *,
    left_deep_only: bool = False,
) -> Plan:
    """Optimal plan under the estimated cost model (DP over subsets)."""
    hints = hints if hints is not None else HintSet.default()
    tables = list(query.tables)
    n = len(tables)

    # Enumerate every connected subset up front and prime their estimated
    # cardinalities in one batched call: cache hits are answered directly
    # and the misses go through the estimator's ``estimate_batch`` as a
    # single featurization + forward pass instead of one call per subset.
    singles = [frozenset((t,)) for t in tables]
    by_size: dict[int, list[frozenset[str]]] = {}
    connected: list[frozenset[str]] = list(singles)
    for size in range(2, n + 1):
        sized: list[frozenset[str]] = []
        for combo in combinations(tables, size):
            subset = frozenset(combo)
            if query.subquery(subset).is_connected():
                sized.append(subset)
        by_size[size] = sized
        connected.extend(sized)
    card_of = coster.subquery_cardinalities(query, connected)

    best: dict[frozenset[str], tuple[PlanNode, float]] = {}
    for t in tables:
        best[frozenset((t,))] = _best_scan(query, t, coster, hints)

    if n == 1:
        return Plan(query, best[frozenset(tables)][0])

    for size in range(2, n + 1):
        for subset in by_size[size]:
            champion: tuple[PlanNode, float] | None = None
            # All partitions into two connected, joined halves.
            members = sorted(subset)
            for r in range(1, size):
                for left_combo in combinations(members[1:], r - 1):
                    left_set = frozenset((members[0],) + left_combo)
                    right_set = subset - left_set
                    if left_deep_only and len(right_set) != 1:
                        continue
                    if left_set not in best or right_set not in best:
                        continue
                    conditions = _join_conditions_between(query, left_set, right_set)
                    if not conditions:
                        continue
                    cand = _best_join(
                        query,
                        best[left_set],
                        best[right_set],
                        conditions,
                        coster,
                        hints,
                        card_of,
                        allow_swap=not left_deep_only,
                    )
                    if cand is not None and (
                        champion is None or cand[1] < champion[1]
                    ):
                        champion = cand
            if champion is not None:
                best[subset] = champion

    full = frozenset(tables)
    if full not in best:
        raise ValueError(f"no connected plan covers all tables of {query}")
    return Plan(query, best[full][0])


def enumerate_greedy(
    query: Query, coster: PlanCoster, hints: HintSet | None = None
) -> Plan:
    """Greedy pairwise joining: fast, possibly suboptimal."""
    hints = hints if hints is not None else HintSet.default()
    fragments: dict[frozenset[str], tuple[PlanNode, float]] = {}
    card_of: dict[frozenset[str], float] = {}
    for t in query.tables:
        key = frozenset((t,))
        fragments[key] = _best_scan(query, t, coster, hints)
        card_of[key] = coster.subquery_cardinality(query, key)

    while len(fragments) > 1:
        champion: tuple[frozenset[str], frozenset[str], JoinNode, float] | None = None
        keys = list(fragments)
        for a, b in combinations(keys, 2):
            conditions = _join_conditions_between(query, a, b)
            if not conditions:
                continue
            merged = a | b
            if merged not in card_of:
                card_of[merged] = coster.subquery_cardinality(query, merged)
            cand = _best_join(
                query, fragments[a], fragments[b], conditions, coster, hints, card_of
            )
            if cand is not None and (champion is None or cand[1] < champion[3]):
                champion = (a, b, cand[0], cand[1])
        if champion is None:
            raise ValueError(f"join graph disconnected during greedy planning: {query}")
        a, b, node, cost = champion
        del fragments[a], fragments[b]
        fragments[a | b] = (node, cost)
    (_, (root, _)), = fragments.items()
    return Plan(query, root)


class Optimizer:
    """The native optimizer: stats + pluggable estimator + enumeration.

    Parameters
    ----------
    db:
        The database to plan against.
    estimator:
        Cardinality estimator consulted during costing; defaults to the
        traditional histogram estimator.  Swapping this is how learned
        estimators and injection/scaling knobs steer the planner.
    stats:
        Pre-built statistics (ANALYZE output); built on demand otherwise.
    constants:
        Cost-model constants.
    cache:
        Cross-plan :class:`CardinalityCache`; a fresh one is created when
        not given.  The cache persists across plannings (and across
        estimator swaps via :meth:`with_estimator`), which is what makes
        Bao's per-hint-set re-planning and Lero's factor sweep estimate
        each sub-plan once instead of once per enumeration.
    bound_estimator:
        Optional pessimistic upper-bound estimator (:mod:`repro.cardest.
        bounds`) enabling the risk-bounded planner modes.  It gets its
        own coster over the *same* cardinality cache (distinct estimator
        tags keep expected and worst-case entries apart).
    risk / risk_lambda:
        Default risk mode for :meth:`plan`: ``"expected"`` (classic
        estimated-cost minimization), ``"worst_case"`` (minimize cost
        under the certified bound) or ``"blended"`` (mix the two at
        ``risk_lambda`` -- 0 is expected, 1 is worst-case).  Both can be
        overridden per call.
    """

    def __init__(
        self,
        db: Database,
        estimator: CardinalityEstimator | None = None,
        stats: DatabaseStats | None = None,
        constants: CostConstants | None = None,
        cache: CardinalityCache | None = None,
        *,
        bound_estimator: CardinalityEstimator | None = None,
        risk: str = "expected",
        risk_lambda: float = 0.5,
    ) -> None:
        if risk not in RISK_MODES:
            raise ValueError(f"unknown risk mode {risk!r}; one of {RISK_MODES}")
        if risk != "expected" and bound_estimator is None:
            raise ValueError(
                f"risk={risk!r} needs a bound_estimator (see repro.cardest.bounds)"
            )
        self.db = db
        self.stats = stats if stats is not None else DatabaseStats.build(db)
        self.estimator: CardinalityEstimator = (
            estimator
            if estimator is not None
            else TraditionalCardinalityEstimator(db, self.stats)
        )
        self.constants = constants
        self.cache = cache if cache is not None else CardinalityCache()
        self.coster = PlanCoster(db, self.estimator, constants, cache=self.cache)
        self.bound_estimator = bound_estimator
        self.risk = risk
        self.risk_lambda = float(risk_lambda)
        self.bound_coster = (
            PlanCoster(db, bound_estimator, constants, cache=self.cache)
            if bound_estimator is not None
            else None
        )

    def with_estimator(self, estimator: CardinalityEstimator) -> "Optimizer":
        """A new optimizer sharing stats (and the cardinality cache) but
        using a different estimator."""
        return Optimizer(
            self.db,
            estimator,
            self.stats,
            self.constants,
            cache=self.cache,
            bound_estimator=self.bound_estimator,
            risk=self.risk,
            risk_lambda=self.risk_lambda,
        )

    def _planning_coster(
        self, risk: str | None, risk_lambda: float | None
    ) -> PlanCoster | RiskCoster:
        """The coster one planning runs under (risk knobs resolved)."""
        risk = self.risk if risk is None else risk
        if risk not in RISK_MODES:
            raise ValueError(f"unknown risk mode {risk!r}; one of {RISK_MODES}")
        if risk == "expected":
            return self.coster
        if self.bound_coster is None:
            raise ValueError(
                f"risk={risk!r} needs a bound_estimator (see repro.cardest.bounds)"
            )
        lam = (
            1.0
            if risk == "worst_case"
            else (self.risk_lambda if risk_lambda is None else float(risk_lambda))
        )
        return RiskCoster(self.coster, self.bound_coster, lam)

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss/eviction counters of the shared cardinality cache."""
        return self.cache.stats()

    def plan(
        self,
        query: Query,
        hints: HintSet | None = None,
        algorithm: str = "dp",
        *,
        risk: str | None = None,
        risk_lambda: float | None = None,
    ) -> Plan:
        """Produce a physical plan. ``algorithm``: dp | greedy | left_deep.

        ``risk``/``risk_lambda`` override the optimizer's defaults for
        this one planning (e.g. ``risk="worst_case"`` picks the plan
        minimizing cost under the certified cardinality bound)."""
        coster = self._planning_coster(risk, risk_lambda)
        if algorithm == "dp":
            return enumerate_dp(query, coster, hints)
        if algorithm == "greedy":
            return enumerate_greedy(query, coster, hints)
        if algorithm == "left_deep":
            return enumerate_dp(query, coster, hints, left_deep_only=True)
        raise ValueError(f"unknown algorithm {algorithm!r}")

    def cost(self, plan: Plan) -> float:
        """Estimated cost of an arbitrary plan under the current estimator."""
        return self.coster.cost(plan)
