"""The traditional (PostgreSQL-style) cardinality estimator.

Per-table selectivities come from MCV lists and equi-depth histograms under
the attribute-independence assumption; join selectivities use the classic
``1 / max(ndv_left, ndv_right)`` rule with the containment assumption.
These are exactly the assumptions whose failure on correlated data motivates
every learned estimator in the survey -- this estimator is the baseline all
experiments compare against.
"""

from __future__ import annotations

from repro.optimizer.statistics import DatabaseStats
from repro.sql.query import Op, OrPredicate, Predicate, Query
from repro.storage.catalog import Database

__all__ = ["TraditionalCardinalityEstimator"]


class TraditionalCardinalityEstimator:
    """Histogram + independence estimator implementing
    :class:`repro.core.CardinalityEstimator`."""

    def __init__(self, db: Database, stats: DatabaseStats | None = None) -> None:
        self.db = db
        self.stats = stats if stats is not None else DatabaseStats.build(db)

    # -- predicate selectivity ------------------------------------------------

    def predicate_selectivity(self, pred) -> float:
        if isinstance(pred, OrPredicate):
            # Disjunction under independence of the parts' complements:
            # sel = 1 - prod(1 - sel_i)  (exact for disjoint parts, the
            # usual optimizer upper-ish bound otherwise).
            miss = 1.0
            for part in pred.parts:
                miss *= 1.0 - self.predicate_selectivity(part)
            return 1.0 - miss
        col_stats = self.stats.table(pred.column.table).column(pred.column.column)
        if pred.op is Op.EQ:
            return col_stats.eq_selectivity(float(pred.value))  # type: ignore[arg-type]
        if pred.op is Op.IN:
            sel = sum(
                col_stats.eq_selectivity(float(v))
                for v in pred.value  # type: ignore[union-attr]
            )
            return min(sel, 1.0)
        lo, hi, lo_inc, hi_inc = pred.to_bounds()
        return col_stats.range_selectivity(
            lo, hi, inclusive_lo=lo_inc, inclusive_hi=hi_inc
        )

    def table_selectivity(self, query: Query, table: str) -> float:
        """Combined selectivity of all predicates on ``table`` (independence)."""
        sel = 1.0
        for pred in query.predicates_on(table):
            sel *= self.predicate_selectivity(pred)
        return sel

    # -- cardinality ----------------------------------------------------------

    def estimate(self, query: Query) -> float:
        """Estimated COUNT(*) of the (sub-)query.

        cardinality = prod_t |t| * sel(t)  *  prod_join 1/max(ndv_l, ndv_r)
        """
        card = 1.0
        for table in query.tables:
            n_rows = self.stats.table(table).n_rows
            card *= n_rows * self.table_selectivity(query, table)
        for join in query.joins:
            left = self.stats.table(join.left.table).column(join.left.column)
            right = self.stats.table(join.right.table).column(join.right.column)
            ndv = max(left.n_distinct, right.n_distinct, 1)
            card /= ndv
        return max(card, 0.0)
