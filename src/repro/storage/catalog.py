"""Database catalog: named tables plus the declared equi-join graph."""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.table import Table

__all__ = ["JoinEdge", "Database"]


@dataclass(frozen=True)
class JoinEdge:
    """A declared equi-join edge ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def other(self, table: str) -> str:
        if table == self.left_table:
            return self.right_table
        if table == self.right_table:
            return self.left_table
        raise ValueError(f"{table!r} not part of edge {self}")

    def column_of(self, table: str) -> str:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        raise ValueError(f"{table!r} not part of edge {self}")

    def normalized(self) -> "JoinEdge":
        """Canonical orientation (lexicographic) for set membership."""
        if (self.left_table, self.left_column) <= (self.right_table, self.right_column):
            return self
        return JoinEdge(
            self.right_table, self.right_column, self.left_table, self.left_column
        )


class Database:
    """A collection of tables and the join edges between them.

    The join graph declares which column pairs are joinable (typically
    PK-FK relationships, but STATS-style non-key joins are allowed too);
    workload generators draw connected subgraphs from it.
    """

    def __init__(self, name: str, tables: list[Table], joins: list[JoinEdge]) -> None:
        self.name = name
        self.tables: dict[str, Table] = {}
        for t in tables:
            if t.name in self.tables:
                raise ValueError(f"duplicate table {t.name!r}")
            self.tables[t.name] = t
        for edge in joins:
            self._validate_edge(edge)
        self.joins = [e.normalized() for e in joins]

    def _validate_edge(self, edge: JoinEdge) -> None:
        for tbl, col in (
            (edge.left_table, edge.left_column),
            (edge.right_table, edge.right_column),
        ):
            if tbl not in self.tables:
                raise ValueError(f"join edge references unknown table {tbl!r}")
            if col not in self.tables[tbl]:
                raise ValueError(f"join edge references unknown column {tbl}.{col}")

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={list(self.tables)}, "
            f"joins={len(self.joins)})"
        )

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"database {self.name!r} has no table {name!r}; "
                f"available: {sorted(self.tables)}"
            ) from None

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    @property
    def data_version(self) -> int:
        """Monotone counter over all table mutations (see Table.data_version)."""
        return sum(t.data_version for t in self.tables.values())

    def edges_for(self, table: str) -> list[JoinEdge]:
        return [e for e in self.joins if e.involves(table)]

    def edges_between(self, a: str, b: str) -> list[JoinEdge]:
        return [e for e in self.joins if e.involves(a) and e.involves(b) and a != b]

    def neighbors(self, table: str) -> set[str]:
        return {e.other(table) for e in self.edges_for(table)}

    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.tables.values())
