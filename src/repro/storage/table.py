"""Columnar tables backed by numpy arrays.

Columns are integer- or float-valued; categorical data is stored
integer-coded (the dictionary lives with the workload generator, not the
storage layer, since every surveyed estimator operates on coded values).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """A named column of a table.

    Attributes
    ----------
    name:
        Column name, unique within its table.
    values:
        1-D numpy array (int64 or float64).
    is_key:
        True when the column is a (unique) primary key -- used by the
        optimizer's statistics and by FK-join cardinality bounds.
    """

    name: str
    values: np.ndarray
    is_key: bool = False

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values)
        if self.values.ndim != 1:
            raise ValueError(f"column {self.name!r} must be 1-D")
        if self.values.dtype.kind not in "if":
            raise ValueError(
                f"column {self.name!r} must be numeric, got {self.values.dtype}"
            )
        if self.is_key and self.values.size and (
            np.unique(self.values).size != self.values.size
        ):
            raise ValueError(f"key column {self.name!r} contains duplicates")

    @property
    def n_distinct(self) -> int:
        return int(np.unique(self.values).size)

    @property
    def min(self) -> float:
        return float(self.values.min()) if self.values.size else 0.0

    @property
    def max(self) -> float:
        return float(self.values.max()) if self.values.size else 0.0


class Table:
    """A named collection of equal-length columns."""

    def __init__(self, name: str, columns: list[Column]) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        lengths = {c.values.shape[0] for c in columns}
        if len(lengths) != 1:
            raise ValueError(f"table {name!r} has ragged columns: {lengths}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns: dict[str, Column] = {c.name: c for c in columns}
        self.n_rows = columns[0].values.shape[0]
        # Bumped on every mutation; cardinality caches key on it so cached
        # estimates never survive data drift.
        self.data_version = 0

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.n_rows}, cols={list(self.columns)})"

    def __contains__(self, column: str) -> bool:
        return column in self.columns

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {sorted(self.columns)}"
            ) from None

    def values(self, name: str) -> np.ndarray:
        return self.column(name).values

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def matrix(self, column_names: list[str] | None = None) -> np.ndarray:
        """Stack the given columns into an ``[n_rows, n_cols]`` float matrix."""
        names = column_names if column_names is not None else self.column_names
        return np.column_stack([self.values(n).astype(float) for n in names])

    def append_rows(self, rows: dict[str, np.ndarray]) -> None:
        """Append rows given as a dict of column-name -> values.

        Used by the dynamic-data (drift) experiments.  All columns of the
        table must be present and of equal length.
        """
        missing = set(self.columns) - set(rows)
        if missing:
            raise ValueError(f"append missing columns: {sorted(missing)}")
        lengths = {np.asarray(v).shape[0] for v in rows.values()}
        if len(lengths) != 1:
            raise ValueError("appended columns have unequal lengths")
        for name, col in self.columns.items():
            new = np.asarray(rows[name]).astype(col.values.dtype)
            col.values = np.concatenate([col.values, new])
            if col.is_key and np.unique(col.values).size != col.values.size:
                raise ValueError(f"append violates key uniqueness on {name!r}")
        self.n_rows += next(iter(lengths))
        self.data_version += 1

    def sample_rows(
        self, n: int, rng: np.random.Generator, column_names: list[str] | None = None
    ) -> np.ndarray:
        """Uniform row sample (without replacement when possible)."""
        names = column_names if column_names is not None else self.column_names
        if self.n_rows == 0:
            return np.zeros((0, len(names)))
        replace = n > self.n_rows
        idx = rng.choice(self.n_rows, size=min(n, self.n_rows), replace=replace)
        return np.column_stack([self.values(c)[idx].astype(float) for c in names])
