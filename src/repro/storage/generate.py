"""Synthetic column generators with controllable skew and correlation.

Learned cardinality estimators differ most on data with heavy skew and
cross-column correlation -- exactly what the STATS benchmark [12] was built
to provide and what TPC-H lacks.  These helpers generate such columns:

- :func:`zipf_column` -- Zipf-distributed categorical codes;
- :func:`correlated_column` -- a column correlated with a driver column via
  a noisy deterministic map (strength-controllable);
- :func:`mixture_column` -- multi-modal numeric data;
- :func:`fk_column` -- foreign keys with skewed fan-out (some parents are
  referenced far more often, producing non-uniform join fan-outs).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_column",
    "uniform_int_column",
    "correlated_column",
    "mixture_column",
    "fk_column",
]


def zipf_column(
    n: int, domain: int, skew: float, rng: np.random.Generator
) -> np.ndarray:
    """``n`` integer codes in ``[0, domain)`` with Zipf(``skew``) frequencies.

    ``skew = 0`` is uniform; larger values concentrate mass on low codes.
    """
    if domain < 1:
        raise ValueError("domain must be >= 1")
    ranks = np.arange(1, domain + 1, dtype=float)
    weights = ranks ** (-skew) if skew > 0 else np.ones(domain)
    probs = weights / weights.sum()
    return rng.choice(domain, size=n, p=probs).astype(np.int64)


def uniform_int_column(
    n: int, low: int, high: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform integers in ``[low, high]`` inclusive."""
    if high < low:
        raise ValueError("high must be >= low")
    return rng.integers(low, high + 1, size=n).astype(np.int64)


def correlated_column(
    driver: np.ndarray,
    domain: int,
    correlation: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """A column correlated with ``driver``.

    With probability ``correlation`` the value is a deterministic function of
    the driver value (a fixed random permutation-based map into the target
    domain); otherwise it is drawn uniformly.  ``correlation = 1`` gives a
    functional dependency, ``0`` gives independence.
    """
    if not 0.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [0, 1]")
    driver = np.asarray(driver, dtype=np.int64)
    driver_domain = int(driver.max()) + 1 if driver.size else 1
    mapping = rng.integers(0, domain, size=driver_domain)
    deterministic = mapping[driver]
    random_part = rng.integers(0, domain, size=driver.shape[0])
    use_det = rng.random(driver.shape[0]) < correlation
    return np.where(use_det, deterministic, random_part).astype(np.int64)


def mixture_column(
    n: int,
    modes: list[tuple[float, float, float]],
    rng: np.random.Generator,
) -> np.ndarray:
    """Numeric column from a Gaussian mixture ``[(weight, mean, std), ...]``."""
    if not modes:
        raise ValueError("need at least one mode")
    weights = np.array([m[0] for m in modes], dtype=float)
    weights /= weights.sum()
    which = rng.choice(len(modes), size=n, p=weights)
    out = np.empty(n)
    for i, (_, mean, std) in enumerate(modes):
        mask = which == i
        out[mask] = rng.normal(mean, std, size=int(mask.sum()))
    return out


def fk_column(
    n: int,
    parent_keys: np.ndarray,
    skew: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Foreign-key values referencing ``parent_keys`` with Zipf-skewed fan-out.

    A random permutation of the parents receives the Zipf ranks so that the
    "hot" parents are not simply the smallest ids.
    """
    parent_keys = np.asarray(parent_keys)
    k = parent_keys.shape[0]
    if k == 0:
        raise ValueError("parent table has no keys")
    ranks = np.arange(1, k + 1, dtype=float)
    weights = ranks ** (-skew) if skew > 0 else np.ones(k)
    probs = weights / weights.sum()
    perm = rng.permutation(k)
    chosen = rng.choice(k, size=n, p=probs)
    return parent_keys[perm[chosen]].astype(parent_keys.dtype)
