"""Seeded random schema + data generator: whole families of databases.

The repo's three hand-built datasets (imdb/stats/tpch "lite") cover three
benchmark styles, but measuring *cross-schema generalization* -- the
survey's central open question, and the axis "How Good are Learned Cost
Models, Really?" shows transfer claims collapse without -- needs schema
and workload diversity at scale.  This module emits arbitrarily many
databases from a single seed:

- **variable table counts** and per-table row counts / column counts;
- **join topologies**: chains, stars, cliques, random trees with extra
  cycle edges, multiple connected components (including isolated
  tables), and STATS-style **non-PK-FK many-to-many edges** between
  attribute columns drawn from a shared domain;
- **data profiles** reusing the :mod:`repro.storage.generate`
  primitives: per-column Zipf skew, cross-column correlation, Gaussian
  mixtures, and Zipf-skewed FK fan-outs.

Everything is a pure function of ``(seed, config)``: the same seed
produces byte-identical tables (same values, same dtypes, same join
edges), certified by :func:`database_fingerprint` -- a sha256 over the
full schema *and* column bytes that two fresh processes can compare.
:func:`schema_family` derives per-member seeds from one family seed, so
"generate me 20 databases" is one call and one seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.storage.catalog import Database, JoinEdge
from repro.storage.generate import (
    correlated_column,
    fk_column,
    mixture_column,
    uniform_int_column,
    zipf_column,
)
from repro.storage.table import Column, Table

__all__ = [
    "TOPOLOGIES",
    "SchemaGenConfig",
    "generate_database",
    "schema_family",
    "database_fingerprint",
    "topology_summary",
]

#: accepted join-graph shapes; "random" draws a spanning tree plus extra
#: cycle edges, the named shapes are exact.
TOPOLOGIES = ("chain", "star", "clique", "random")


@dataclass(frozen=True)
class SchemaGenConfig:
    """Knobs for one schema family; every range is inclusive.

    ``n_components > 1`` splits the tables into that many independently
    wired connected components (the last components may be singletons --
    isolated tables -- when there are not enough tables to go around),
    which is exactly the shape that used to break the workload
    generator's connected-subgraph sampler.
    """

    n_tables: tuple[int, int] = (4, 7)
    rows: tuple[int, int] = (300, 1200)
    attr_cols: tuple[int, int] = (1, 3)
    topology: str = "random"
    n_components: int = 1
    #: probability of each extra (cycle-creating) PK-FK edge in "random"
    extra_edge_rate: float = 0.25
    #: probability of adding one non-PK-FK (many-to-many) attribute edge
    many_to_many_rate: float = 0.35
    #: Zipf skew range for categorical attribute columns
    skew: tuple[float, float] = (0.0, 1.8)
    #: probability an attribute column correlates with the previous one
    correlated_rate: float = 0.35
    #: probability an attribute column is a Gaussian-mixture float column
    mixture_rate: float = 0.15
    #: categorical domain-size range
    domain: tuple[int, int] = (8, 120)
    #: FK fan-out skew range
    fanout_skew: tuple[float, float] = (0.0, 1.5)

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ConfigError(
                f"unknown topology {self.topology!r}; one of {TOPOLOGIES}"
            )
        for name in ("n_tables", "rows", "attr_cols", "skew", "domain", "fanout_skew"):
            lo, hi = getattr(self, name)
            if hi < lo:
                raise ConfigError(f"{name} range {lo, hi} has hi < lo")
        if self.n_tables[0] < 1:
            raise ConfigError("need at least one table")
        if self.rows[0] < 1:
            raise ConfigError("every table needs at least one row")
        if self.attr_cols[0] < 1:
            # Every table needs >= 1 predicate-eligible column or the
            # workload generator cannot put a filter on it.
            raise ConfigError("every table needs at least one attribute column")
        if self.n_components < 1:
            raise ConfigError("n_components must be >= 1")
        for name in ("extra_edge_rate", "many_to_many_rate",
                     "correlated_rate", "mixture_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")


def _irange(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    return int(rng.integers(bounds[0], bounds[1] + 1))


def _frange(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    lo, hi = bounds
    return float(lo + (hi - lo) * rng.random())


def _component_edges(
    tables: list[int], topology: str, extra_edge_rate: float,
    rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """(parent, child) PK-FK pairs wiring one component's tables."""
    if len(tables) < 2:
        return []
    edges: list[tuple[int, int]] = []
    if topology == "chain":
        edges = [(tables[i], tables[i + 1]) for i in range(len(tables) - 1)]
    elif topology == "star":
        hub = tables[0]
        edges = [(hub, t) for t in tables[1:]]
    elif topology == "clique":
        edges = [
            (tables[i], tables[j])
            for i in range(len(tables))
            for j in range(i + 1, len(tables))
        ]
    else:  # random: spanning tree + extra cycle edges
        for i in range(1, len(tables)):
            parent = tables[int(rng.integers(i))]
            edges.append((parent, tables[i]))
        present = set(edges)
        for i in range(len(tables)):
            for j in range(i + 1, len(tables)):
                pair = (tables[i], tables[j])
                if pair in present or (pair[1], pair[0]) in present:
                    continue
                if rng.random() < extra_edge_rate:
                    edges.append(pair)
                    present.add(pair)
    return edges


def generate_database(
    seed: int,
    config: SchemaGenConfig | None = None,
    *,
    name: str | None = None,
) -> Database:
    """One random database: a pure function of ``(seed, config)``.

    Tables are named ``t0 .. tN``; each has an ``id`` primary key, one
    ``fk_<parent>`` column per incoming PK-FK edge, and 1+ attribute
    columns (``a0 ..``) with seeded skew / correlation / mixture
    profiles.  Non-PK-FK edges join dedicated ``m2m<k>`` attribute
    columns generated over a shared domain on both sides, so the join
    actually matches rows (the STATS-style many-to-many regime).
    """
    cfg = config if config is not None else SchemaGenConfig()
    rng = np.random.default_rng((int(seed), 0xC0DE))
    n_tables = _irange(rng, cfg.n_tables)

    # -- partition tables into components and wire each one -----------------------
    ids = list(range(n_tables))
    n_comp = min(cfg.n_components, n_tables)
    # Contiguous partition with every component non-empty; the split
    # points are seeded so component sizes vary across the family.
    if n_comp > 1:
        cuts = sorted(
            int(c) for c in rng.choice(
                np.arange(1, n_tables), size=n_comp - 1, replace=False
            )
        )
    else:
        cuts = []
    components: list[list[int]] = []
    prev = 0
    for cut in cuts + [n_tables]:
        components.append(ids[prev:cut])
        prev = cut
    pk_edges: list[tuple[int, int]] = []
    for comp in components:
        pk_edges.extend(
            _component_edges(comp, cfg.topology, cfg.extra_edge_rate, rng)
        )

    # -- non-PK-FK many-to-many edges (within a component) -------------------------
    m2m_edges: list[tuple[int, int, int]] = []  # (a, b, domain)
    for comp in components:
        if len(comp) >= 2 and rng.random() < cfg.many_to_many_rate:
            i, j = sorted(
                int(x) for x in rng.choice(len(comp), size=2, replace=False)
            )
            m2m_edges.append(
                (comp[i], comp[j], _irange(rng, cfg.domain))
            )

    # -- per-table row counts and attribute plans ----------------------------------
    n_rows = [_irange(rng, cfg.rows) for _ in ids]
    n_attrs = [_irange(rng, cfg.attr_cols) for _ in ids]
    parents_of: dict[int, list[int]] = {t: [] for t in ids}
    for parent, child in pk_edges:
        parents_of[child].append(parent)

    # -- generate data, parents before children (ids are arange, so any
    #    order works; FK columns just need the parent's row count) ---------------
    tables: list[Table] = []
    joins: list[JoinEdge] = []
    m2m_cols: dict[int, list[tuple[str, int]]] = {t: [] for t in ids}
    for k, (a, b, domain) in enumerate(m2m_edges):
        m2m_cols[a].append((f"m2m{k}", domain))
        m2m_cols[b].append((f"m2m{k}", domain))

    for t in ids:
        rows = n_rows[t]
        cols: list[Column] = [
            Column("id", np.arange(rows, dtype=np.int64), is_key=True)
        ]
        for parent in parents_of[t]:
            fanout = _frange(rng, cfg.fanout_skew)
            parent_keys = np.arange(n_rows[parent], dtype=np.int64)
            cols.append(
                Column(f"fk_t{parent}", fk_column(rows, parent_keys, fanout, rng))
            )
        for cname, domain in m2m_cols[t]:
            skew = _frange(rng, cfg.skew)
            cols.append(Column(cname, zipf_column(rows, domain, skew, rng)))
        prev_values: np.ndarray | None = None
        for a in range(n_attrs[t]):
            domain = _irange(rng, cfg.domain)
            roll = rng.random()
            if roll < cfg.mixture_rate:
                modes = [
                    (1.0, _frange(rng, (0.0, 100.0)), _frange(rng, (2.0, 15.0)))
                    for _ in range(int(rng.integers(1, 4)))
                ]
                values = np.round(mixture_column(rows, modes, rng), 3)
            elif (
                prev_values is not None
                and roll < cfg.mixture_rate + cfg.correlated_rate
            ):
                driver = prev_values.astype(np.int64, copy=False)
                values = correlated_column(
                    np.maximum(driver, 0), domain, _frange(rng, (0.4, 0.95)), rng
                )
            elif rng.random() < 0.5:
                values = zipf_column(rows, domain, _frange(rng, cfg.skew), rng)
            else:
                values = uniform_int_column(rows, 0, domain - 1, rng)
            if values.dtype.kind == "i":
                prev_values = values
            cols.append(Column(f"a{a}", values))
        tables.append(Table(f"t{t}", cols))

    for parent, child in pk_edges:
        joins.append(JoinEdge(f"t{child}", f"fk_t{parent}", f"t{parent}", "id"))
    for k, (a, b, _domain) in enumerate(m2m_edges):
        joins.append(JoinEdge(f"t{a}", f"m2m{k}", f"t{b}", f"m2m{k}"))

    db_name = name if name is not None else f"gen_{int(seed) & 0xFFFFFFFF:08x}"
    return Database(db_name, tables, joins)


def schema_family(
    n: int,
    *,
    seed: int = 0,
    config: SchemaGenConfig | None = None,
    name_prefix: str = "gen",
) -> list[Database]:
    """``n`` databases from one family seed (member i uses ``seed*1000+i``
    -- disjoint from other families' member seeds for any base < 1000)."""
    if n < 1:
        raise ConfigError("need at least one schema")
    return [
        generate_database(
            seed * 1000 + i, config, name=f"{name_prefix}{i:02d}"
        )
        for i in range(n)
    ]


def database_fingerprint(db: Database) -> str:
    """Deterministic 16-hex identity over the full schema *and* data.

    Hashes table names, column names, dtypes, key flags, every column's
    raw bytes, and the normalized join-edge list -- so two databases
    fingerprint equal iff they are byte-identical, across processes.
    """
    h = hashlib.sha256()
    h.update(db.name.encode())
    for tname in sorted(db.tables):
        table = db.tables[tname]
        h.update(f"|table:{tname}:{table.n_rows}".encode())
        for cname in table.column_names:
            col = table.column(cname)
            h.update(
                f"|col:{cname}:{col.values.dtype.str}:{int(col.is_key)}".encode()
            )
            h.update(np.ascontiguousarray(col.values).tobytes())
    for e in sorted(
        db.joins,
        key=lambda e: (e.left_table, e.left_column, e.right_table, e.right_column),
    ):
        h.update(
            f"|join:{e.left_table}.{e.left_column}={e.right_table}.{e.right_column}".encode()
        )
    return h.hexdigest()[:16]


def topology_summary(db: Database) -> dict:
    """Structural profile of a database's join graph.

    Reports table/edge counts, connected components (isolated tables are
    size-1 components), the maximum degree, and whether any edge is
    non-PK-FK (neither endpoint a key column) -- the coverage axes the
    determinism tests assert over a family.
    """
    names = db.table_names
    seen: set[str] = set()
    components: list[int] = []
    for start in names:
        if start in seen:
            continue
        stack, comp = [start], 0
        seen.add(start)
        while stack:
            t = stack.pop()
            comp += 1
            for nb in sorted(db.neighbors(t)):
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        components.append(comp)
    degree = {t: len(db.edges_for(t)) for t in names}
    non_pk_fk = sum(
        1
        for e in db.joins
        if not db.table(e.left_table).column(e.left_column).is_key
        and not db.table(e.right_table).column(e.right_column).is_key
    )
    return {
        "n_tables": len(names),
        "n_edges": len(db.joins),
        "components": sorted(components, reverse=True),
        "max_degree": max(degree.values()) if degree else 0,
        "non_pk_fk_edges": non_pk_fk,
        "total_rows": db.total_rows(),
    }
