"""Ready-made synthetic databases mirroring the benchmarks in the tutorial.

Three databases, matching the three benchmark styles §2.3 discusses:

- :func:`make_imdb_lite` -- a JOB-style movie schema (title / cast_info /
  movie_companies / movie_keyword / person / company) with PK-FK joins and
  moderate correlation: the "many joins on real-ish data" regime.
- :func:`make_stats_lite` -- a STATS-style StackExchange schema (users /
  posts / comments / votes / badges) with *heavy* skew, strong cross-column
  correlation and non-key join fan-outs: the regime that defeats
  independence-based estimators.
- :func:`make_tpch_lite` -- a TPC-H-ish star schema with near-independent
  uniform attributes: the "easy" contrast point.

All generators take a ``scale`` multiplier and a ``seed``; table sizes are
chosen so the default scale runs the whole test suite in seconds while the
benchmarks can raise it.
"""

from __future__ import annotations

import numpy as np

from repro.storage.catalog import Database, JoinEdge
from repro.storage.generate import (
    correlated_column,
    fk_column,
    mixture_column,
    uniform_int_column,
    zipf_column,
)
from repro.storage.table import Column, Table

__all__ = ["make_imdb_lite", "make_stats_lite", "make_tpch_lite", "make_ssb_lite"]


def make_imdb_lite(scale: float = 1.0, seed: int = 0) -> Database:
    """JOB-style movie database; ~9k rows total at scale 1."""
    rng = np.random.default_rng(seed)
    n_title = max(int(2000 * scale), 50)
    n_person = max(int(1500 * scale), 40)
    n_company = max(int(200 * scale), 10)
    n_cast = max(int(4000 * scale), 80)
    n_mc = max(int(1200 * scale), 40)
    n_mk = max(int(1500 * scale), 40)

    title_id = np.arange(n_title, dtype=np.int64)
    kind_id = zipf_column(n_title, 7, 1.2, rng)
    production_year = (1950 + zipf_column(n_title, 74, 0.4, rng)).astype(np.int64)
    # Votes correlate with year (newer movies have more votes) and rating
    # correlates with votes -- the correlations JOB queries exploit.
    votes_base = correlated_column(production_year - 1950, 50, 0.6, rng)
    votes = (votes_base * 200 + rng.integers(0, 200, n_title)).astype(np.int64)
    rating = correlated_column(votes_base, 10, 0.5, rng) + 1
    title = Table(
        "title",
        [
            Column("id", title_id, is_key=True),
            Column("kind_id", kind_id),
            Column("production_year", production_year),
            Column("votes", votes),
            Column("rating", rating.astype(np.int64)),
        ],
    )

    person_id = np.arange(n_person, dtype=np.int64)
    gender = zipf_column(n_person, 3, 0.8, rng)
    birth_decade = (190 + zipf_column(n_person, 11, 0.5, rng)).astype(np.int64)
    person = Table(
        "person",
        [
            Column("id", person_id, is_key=True),
            Column("gender", gender),
            Column("birth_decade", birth_decade),
        ],
    )

    company_id = np.arange(n_company, dtype=np.int64)
    country = zipf_column(n_company, 12, 1.0, rng)
    company = Table(
        "company",
        [
            Column("id", company_id, is_key=True),
            Column("country", country),
        ],
    )

    ci_movie = fk_column(n_cast, title_id, 1.1, rng)
    ci_person = fk_column(n_cast, person_id, 0.9, rng)
    role_id = correlated_column(gender[ci_person], 12, 0.5, rng)
    cast_info = Table(
        "cast_info",
        [
            Column("movie_id", ci_movie),
            Column("person_id", ci_person),
            Column("role_id", role_id),
        ],
    )

    mc_movie = fk_column(n_mc, title_id, 0.8, rng)
    mc_company = fk_column(n_mc, company_id, 1.3, rng)
    company_type = zipf_column(n_mc, 4, 0.7, rng)
    movie_companies = Table(
        "movie_companies",
        [
            Column("movie_id", mc_movie),
            Column("company_id", mc_company),
            Column("company_type", company_type),
        ],
    )

    mk_movie = fk_column(n_mk, title_id, 1.0, rng)
    keyword_id = correlated_column(kind_id[mk_movie], 120, 0.55, rng)
    movie_keyword = Table(
        "movie_keyword",
        [
            Column("movie_id", mk_movie),
            Column("keyword_id", keyword_id),
        ],
    )

    joins = [
        JoinEdge("cast_info", "movie_id", "title", "id"),
        JoinEdge("cast_info", "person_id", "person", "id"),
        JoinEdge("movie_companies", "movie_id", "title", "id"),
        JoinEdge("movie_companies", "company_id", "company", "id"),
        JoinEdge("movie_keyword", "movie_id", "title", "id"),
    ]
    return Database(
        "imdb_lite",
        [title, person, company, cast_info, movie_companies, movie_keyword],
        joins,
    )


def make_stats_lite(scale: float = 1.0, seed: int = 0) -> Database:
    """STATS-style StackExchange database with heavy skew/correlation."""
    rng = np.random.default_rng(seed + 1)
    n_users = max(int(1200 * scale), 40)
    n_posts = max(int(3000 * scale), 60)
    n_comments = max(int(4000 * scale), 80)
    n_votes = max(int(5000 * scale), 80)
    n_badges = max(int(1500 * scale), 40)

    user_id = np.arange(n_users, dtype=np.int64)
    reputation_bucket = zipf_column(n_users, 40, 1.6, rng)
    upvotes = correlated_column(reputation_bucket, 60, 0.8, rng)
    downvotes = correlated_column(upvotes, 25, 0.7, rng)
    creation_bucket = zipf_column(n_users, 15, 0.6, rng)
    users = Table(
        "users",
        [
            Column("id", user_id, is_key=True),
            Column("reputation", reputation_bucket),
            Column("upvotes", upvotes),
            Column("downvotes", downvotes),
            Column("creation_bucket", creation_bucket),
        ],
    )

    post_id = np.arange(n_posts, dtype=np.int64)
    owner_id = fk_column(n_posts, user_id, 1.4, rng)
    post_type = zipf_column(n_posts, 5, 1.8, rng)
    score = correlated_column(reputation_bucket[owner_id], 30, 0.75, rng)
    view_count = correlated_column(score, 80, 0.7, rng)
    tag_id = zipf_column(n_posts, 60, 1.3, rng)
    posts = Table(
        "posts",
        [
            Column("id", post_id, is_key=True),
            Column("owner_id", owner_id),
            Column("post_type", post_type),
            Column("score", score),
            Column("view_count", view_count),
            Column("tag_id", tag_id),
        ],
    )

    c_post = fk_column(n_comments, post_id, 1.5, rng)
    c_user = fk_column(n_comments, user_id, 1.2, rng)
    c_score = correlated_column(score[c_post], 15, 0.6, rng)
    comments = Table(
        "comments",
        [
            Column("post_id", c_post),
            Column("user_id", c_user),
            Column("score", c_score),
        ],
    )

    v_post = fk_column(n_votes, post_id, 1.7, rng)
    vote_type = zipf_column(n_votes, 10, 1.5, rng)
    bounty = correlated_column(vote_type, 12, 0.5, rng)
    votes = Table(
        "votes",
        [
            Column("post_id", v_post),
            Column("vote_type", vote_type),
            Column("bounty", bounty),
        ],
    )

    b_user = fk_column(n_badges, user_id, 1.3, rng)
    badge_class = correlated_column(reputation_bucket[b_user], 3, 0.7, rng)
    badge_date = zipf_column(n_badges, 15, 0.5, rng)
    badges = Table(
        "badges",
        [
            Column("user_id", b_user),
            Column("class", badge_class),
            Column("date_bucket", badge_date),
        ],
    )

    joins = [
        JoinEdge("posts", "owner_id", "users", "id"),
        JoinEdge("comments", "post_id", "posts", "id"),
        JoinEdge("comments", "user_id", "users", "id"),
        JoinEdge("votes", "post_id", "posts", "id"),
        JoinEdge("badges", "user_id", "users", "id"),
    ]
    return Database("stats_lite", [users, posts, comments, votes, badges], joins)


def make_tpch_lite(scale: float = 1.0, seed: int = 0) -> Database:
    """TPC-H-ish star schema with near-uniform, near-independent attributes."""
    rng = np.random.default_rng(seed + 2)
    n_cust = max(int(600 * scale), 30)
    n_supp = max(int(100 * scale), 10)
    n_part = max(int(800 * scale), 30)
    n_orders = max(int(2500 * scale), 60)
    n_line = max(int(6000 * scale), 120)

    cust_id = np.arange(n_cust, dtype=np.int64)
    customer = Table(
        "customer",
        [
            Column("id", cust_id, is_key=True),
            Column("nation", uniform_int_column(n_cust, 0, 24, rng)),
            Column("segment", uniform_int_column(n_cust, 0, 4, rng)),
        ],
    )

    supp_id = np.arange(n_supp, dtype=np.int64)
    supplier = Table(
        "supplier",
        [
            Column("id", supp_id, is_key=True),
            Column("nation", uniform_int_column(n_supp, 0, 24, rng)),
        ],
    )

    part_id = np.arange(n_part, dtype=np.int64)
    part = Table(
        "part",
        [
            Column("id", part_id, is_key=True),
            Column("brand", uniform_int_column(n_part, 0, 24, rng)),
            Column("size", uniform_int_column(n_part, 1, 50, rng)),
        ],
    )

    order_id = np.arange(n_orders, dtype=np.int64)
    orders = Table(
        "orders",
        [
            Column("id", order_id, is_key=True),
            Column("cust_id", fk_column(n_orders, cust_id, 0.1, rng)),
            Column("order_year", uniform_int_column(n_orders, 1992, 1998, rng)),
            Column("priority", uniform_int_column(n_orders, 0, 4, rng)),
        ],
    )

    qty = uniform_int_column(n_line, 1, 50, rng)
    price = np.round(mixture_column(n_line, [(1.0, 500.0, 150.0)], rng), 2)
    lineitem = Table(
        "lineitem",
        [
            Column("order_id", fk_column(n_line, order_id, 0.1, rng)),
            Column("part_id", fk_column(n_line, part_id, 0.2, rng)),
            Column("supp_id", fk_column(n_line, supp_id, 0.1, rng)),
            Column("quantity", qty),
            Column("price", np.maximum(price, 1.0)),
            Column("discount", uniform_int_column(n_line, 0, 10, rng)),
        ],
    )

    joins = [
        JoinEdge("orders", "cust_id", "customer", "id"),
        JoinEdge("lineitem", "order_id", "orders", "id"),
        JoinEdge("lineitem", "part_id", "part", "id"),
        JoinEdge("lineitem", "supp_id", "supplier", "id"),
    ]
    return Database(
        "tpch_lite", [customer, supplier, part, orders, lineitem], joins
    )


def make_ssb_lite(scale: float = 1.0, seed: int = 0) -> Database:
    """Star Schema Benchmark-ish database [46]: one denormalized fact table
    (lineorder) star-joined to four dimensions.  Pure star shape -- every
    query joins through the fact table -- which is the workload pattern SSB
    exists to isolate."""
    rng = np.random.default_rng(seed + 3)
    n_date = max(int(120 * scale), 12)
    n_cust = max(int(500 * scale), 20)
    n_supp = max(int(120 * scale), 10)
    n_part = max(int(700 * scale), 25)
    n_fact = max(int(7000 * scale), 150)

    date_id = np.arange(n_date, dtype=np.int64)
    ddate = Table(
        "ddate",
        [
            Column("id", date_id, is_key=True),
            Column("year", (1992 + date_id // 12 % 7).astype(np.int64)),
            Column("month", (date_id % 12 + 1).astype(np.int64)),
            Column("weeknum", uniform_int_column(n_date, 1, 53, rng)),
        ],
    )

    cust_id = np.arange(n_cust, dtype=np.int64)
    customer = Table(
        "customer",
        [
            Column("id", cust_id, is_key=True),
            Column("region", uniform_int_column(n_cust, 0, 4, rng)),
            Column("nation", uniform_int_column(n_cust, 0, 24, rng)),
            Column("segment", uniform_int_column(n_cust, 0, 4, rng)),
        ],
    )

    supp_id = np.arange(n_supp, dtype=np.int64)
    supplier = Table(
        "supplier",
        [
            Column("id", supp_id, is_key=True),
            Column("region", uniform_int_column(n_supp, 0, 4, rng)),
            Column("nation", uniform_int_column(n_supp, 0, 24, rng)),
        ],
    )

    part_id = np.arange(n_part, dtype=np.int64)
    part = Table(
        "part",
        [
            Column("id", part_id, is_key=True),
            Column("mfgr", uniform_int_column(n_part, 0, 4, rng)),
            Column("category", uniform_int_column(n_part, 0, 24, rng)),
            Column("brand", uniform_int_column(n_part, 0, 39, rng)),
        ],
    )

    lineorder = Table(
        "lineorder",
        [
            Column("date_id", fk_column(n_fact, date_id, 0.3, rng)),
            Column("cust_id", fk_column(n_fact, cust_id, 0.2, rng)),
            Column("supp_id", fk_column(n_fact, supp_id, 0.2, rng)),
            Column("part_id", fk_column(n_fact, part_id, 0.3, rng)),
            Column("quantity", uniform_int_column(n_fact, 1, 50, rng)),
            Column("discount", uniform_int_column(n_fact, 0, 10, rng)),
            Column(
                "revenue",
                np.maximum(
                    np.round(mixture_column(n_fact, [(1.0, 3000.0, 900.0)], rng)),
                    1.0,
                ).astype(np.int64),
            ),
        ],
    )

    joins = [
        JoinEdge("lineorder", "date_id", "ddate", "id"),
        JoinEdge("lineorder", "cust_id", "customer", "id"),
        JoinEdge("lineorder", "supp_id", "supplier", "id"),
        JoinEdge("lineorder", "part_id", "part", "id"),
    ]
    return Database(
        "ssb_lite", [ddate, customer, supplier, part, lineorder], joins
    )
