"""In-memory columnar storage: tables, catalog, and synthetic datasets.

This package is the data substrate standing in for PostgreSQL's storage
layer.  It provides:

- :class:`repro.storage.table.Column` / :class:`repro.storage.table.Table` --
  numpy-backed columnar tables;
- :class:`repro.storage.catalog.Database` -- a named collection of tables
  plus the equi-join graph (declared join edges between columns);
- :mod:`repro.storage.generate` -- generators for skewed and *correlated*
  synthetic columns (the phenomena that defeat independence-assumption
  estimators);
- :mod:`repro.storage.datasets` -- three ready-made databases mirroring the
  benchmarks the tutorial discusses: ``imdb_lite`` (JOB-style),
  ``stats_lite`` (STATS-style) and ``tpch_lite`` (star schema);
- :mod:`repro.storage.schemagen` -- seeded random schema/data generator
  emitting whole *families* of databases (variable table counts, join
  topologies, skew/correlation profiles) with deterministic fingerprints,
  for cross-schema transfer evaluation.
"""

from repro.storage.table import Column, Table
from repro.storage.catalog import Database, JoinEdge
from repro.storage.datasets import (
    make_imdb_lite,
    make_ssb_lite,
    make_stats_lite,
    make_tpch_lite,
)
from repro.storage.schemagen import (
    TOPOLOGIES,
    SchemaGenConfig,
    database_fingerprint,
    generate_database,
    schema_family,
    topology_summary,
)

__all__ = [
    "Column",
    "Table",
    "Database",
    "JoinEdge",
    "TOPOLOGIES",
    "SchemaGenConfig",
    "database_fingerprint",
    "generate_database",
    "schema_family",
    "topology_summary",
    "make_imdb_lite",
    "make_ssb_lite",
    "make_stats_lite",
    "make_tpch_lite",
]
