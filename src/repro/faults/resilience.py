"""Resilience primitives: circuit breaker, retries, fallback components.

These are used by the *real* code paths, not just tests: the
:class:`~repro.serve.deployment.DeploymentManager` guards its learned
optimizer with a :class:`CircuitBreaker` and treats trips as rollback
triggers; :class:`~repro.pilotscope.console.PilotScopeConsole` retries
driver dispatch with a deterministic :class:`RetryPolicy` and degrades to
native execution; :class:`FallbackEstimator` /
:class:`FallbackCostModel` implement the bottom rungs of the degradation
ladder (learned -> histogram/analytic) whenever the learned side throws,
returns non-finite garbage, or sits behind an open breaker.

Everything is deterministic: cooldowns are virtual milliseconds on a
:class:`~repro.faults.clock.VirtualClock`, backoff is a pure function of
the attempt number, and breaker state only changes on explicit
``record_*`` calls -- no wall clock anywhere.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.errors import ConfigError
from repro.faults.clock import VirtualClock

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
    "FallbackEstimator",
    "FallbackCostModel",
]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: numeric codes for gauges (telemetry values must be numbers)
_STATE_CODE = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


class CircuitBreaker:
    """Closed -> open -> half-open breaker over virtual time.

    ``failure_threshold`` consecutive failures trip the breaker OPEN;
    after ``cooldown_ms`` of virtual time it admits trial calls
    (HALF_OPEN), and ``half_open_successes`` consecutive successes close
    it again -- one failure while half-open re-opens it immediately.
    ``epoch`` counts state transitions; estimator wrappers fold it into
    their cache tags so cached cardinalities never outlive a state change.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown_ms: float = 1_000.0,
        half_open_successes: int = 1,
        clock: VirtualClock | None = None,
        name: str = "breaker",
        telemetry=None,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown_ms < 0:
            raise ConfigError("cooldown_ms must be >= 0")
        if half_open_successes < 1:
            raise ConfigError("half_open_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_ms = cooldown_ms
        self.half_open_successes = half_open_successes
        self.clock = clock if clock is not None else VirtualClock()
        self.name = name
        self.telemetry = telemetry
        self.state = BreakerState.CLOSED
        self.epoch = 0  # total state transitions
        self.trips = 0  # transitions into OPEN
        self.consecutive_failures = 0
        self.half_open_streak = 0
        self.calls_allowed = 0
        self.calls_denied = 0
        self._opened_at_ms = 0.0

    def _transition(self, to: BreakerState, reason: str) -> None:
        if to is self.state:
            return
        if self.telemetry is not None:
            self.telemetry.event(
                "breaker_transition",
                breaker=self.name,
                from_state=self.state.value,
                to_state=to.value,
                reason=reason,
            )
        self.state = to
        self.epoch += 1
        if to is BreakerState.OPEN:
            self.trips += 1
            self._opened_at_ms = self.clock.now_ms()
        if to is BreakerState.HALF_OPEN:
            self.half_open_streak = 0
        if to is BreakerState.CLOSED:
            self.consecutive_failures = 0

    def allow(self) -> bool:
        """May the guarded call proceed right now?"""
        if self.state is BreakerState.OPEN:
            if self.clock.now_ms() - self._opened_at_ms >= self.cooldown_ms:
                self._transition(BreakerState.HALF_OPEN, "cooldown_elapsed")
            else:
                self.calls_denied += 1
                return False
        self.calls_allowed += 1
        return True

    def record_success(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self.half_open_streak += 1
            if self.half_open_streak >= self.half_open_successes:
                self._transition(BreakerState.CLOSED, "half_open_recovered")
        else:
            self.consecutive_failures = 0

    def record_failure(self) -> None:
        if self.state is BreakerState.HALF_OPEN:
            self._transition(BreakerState.OPEN, "half_open_failure")
            return
        self.consecutive_failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(
                BreakerState.OPEN,
                f"{self.consecutive_failures} consecutive failures",
            )

    def stats(self) -> dict[str, float]:
        """Gauge-friendly snapshot (numbers only; state as a code:
        0=closed, 1=open, 2=half_open)."""
        return {
            "state": float(_STATE_CODE[self.state]),
            "epoch": float(self.epoch),
            "trips": float(self.trips),
            "consecutive_failures": float(self.consecutive_failures),
            "calls_allowed": float(self.calls_allowed),
            "calls_denied": float(self.calls_denied),
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic bounded retry with exponential virtual backoff.

    ``max_attempts`` counts the first try; ``backoff_ms(attempt)`` is the
    virtual delay *after* failed attempt ``attempt`` (0-based) -- a pure
    function, so retry timelines are identical across runs.
    """

    max_attempts: int = 2
    base_backoff_ms: float = 5.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_backoff_ms < 0 or self.multiplier <= 0:
            raise ConfigError("backoff parameters must be positive")

    def backoff_ms(self, attempt: int) -> float:
        return self.base_backoff_ms * self.multiplier**attempt


def _finite_nonnegative(value: float) -> bool:
    # NaN fails both comparisons; +/-inf fails one of them.
    return 0.0 <= value <= 1.79e308


class FallbackEstimator:
    """Learned -> traditional degradation for cardinality estimation.

    Answers come from ``primary`` while it behaves; any exception or
    non-finite/negative output counts as a failure (fed to the optional
    breaker) and the query is re-answered by ``fallback`` -- typically the
    histogram estimator, which cannot fail.  While the breaker is open,
    primary is not consulted at all, so a crashing model stops paying its
    own inference cost.

    ``estimates_version`` combines both wrapped versions with the breaker
    epoch, so the planner's cardinality cache never serves values across a
    degradation boundary.
    """

    def __init__(
        self,
        primary,
        fallback,
        *,
        breaker: CircuitBreaker | None = None,
        telemetry=None,
        name: str | None = None,
    ) -> None:
        self.primary = primary
        self.fallback = fallback
        self.breaker = breaker
        self.telemetry = telemetry
        self.name = name or (
            f"{getattr(primary, 'name', type(primary).__name__)}"
            f"->{getattr(fallback, 'name', type(fallback).__name__)}"
        )
        self.calls = 0
        self.fallback_served = 0
        self.primary_errors = 0
        self.nonfinite_outputs = 0
        self.breaker_denied = 0

    @property
    def estimates_version(self):
        return (
            getattr(self.primary, "estimates_version", 0),
            getattr(self.fallback, "estimates_version", 0),
            self.breaker.epoch if self.breaker is not None else 0,
        )

    def _incr(self, counter: str) -> None:
        if self.telemetry is not None:
            self.telemetry.incr(counter)

    def _serve_fallback(self, query) -> float:
        self.fallback_served += 1
        self._incr("fallback.estimator.served")
        return float(self.fallback.estimate(query))

    def estimate(self, query) -> float:
        self.calls += 1
        if self.breaker is not None and not self.breaker.allow():
            self.breaker_denied += 1
            self._incr("fallback.estimator.breaker_denied")
            return self._serve_fallback(query)
        try:
            value = float(self.primary.estimate(query))
        except Exception:
            self.primary_errors += 1
            self._incr("fallback.estimator.primary_errors")
            if self.breaker is not None:
                self.breaker.record_failure()
            return self._serve_fallback(query)
        if not _finite_nonnegative(value):
            self.nonfinite_outputs += 1
            self._incr("fallback.estimator.nonfinite")
            if self.breaker is not None:
                self.breaker.record_failure()
            return self._serve_fallback(query)
        if self.breaker is not None:
            self.breaker.record_success()
        return value

    def stats(self) -> dict[str, float]:
        return {
            "calls": float(self.calls),
            "fallback_served": float(self.fallback_served),
            "primary_errors": float(self.primary_errors),
            "nonfinite_outputs": float(self.nonfinite_outputs),
            "breaker_denied": float(self.breaker_denied),
        }


class FallbackCostModel:
    """Learned -> analytic degradation for plan costing / latency
    prediction.  Same contract as :class:`FallbackEstimator`, over the
    :class:`repro.core.CostEstimator` / ``predict_latency`` surfaces."""

    def __init__(
        self,
        primary,
        fallback,
        *,
        breaker: CircuitBreaker | None = None,
        telemetry=None,
        name: str | None = None,
    ) -> None:
        self.primary = primary
        self.fallback = fallback
        self.breaker = breaker
        self.telemetry = telemetry
        self.name = name or (
            f"{type(primary).__name__}->{type(fallback).__name__}"
        )
        self.calls = 0
        self.fallback_served = 0
        self.primary_errors = 0
        self.nonfinite_outputs = 0

    def _guarded(self, method: str, plan) -> float:
        self.calls += 1
        fb = getattr(self.fallback, method)
        if self.breaker is not None and not self.breaker.allow():
            self.fallback_served += 1
            return float(fb(plan))
        try:
            value = float(getattr(self.primary, method)(plan))
        except Exception:
            self.primary_errors += 1
            if self.breaker is not None:
                self.breaker.record_failure()
            if self.telemetry is not None:
                self.telemetry.incr("fallback.costmodel.primary_errors")
            self.fallback_served += 1
            return float(fb(plan))
        if not _finite_nonnegative(value):
            self.nonfinite_outputs += 1
            if self.breaker is not None:
                self.breaker.record_failure()
            self.fallback_served += 1
            return float(fb(plan))
        if self.breaker is not None:
            self.breaker.record_success()
        return value

    def cost(self, plan) -> float:
        return self._guarded("cost", plan)

    def predict_latency(self, plan) -> float:
        return self._guarded("predict_latency", plan)

    def stats(self) -> dict[str, float]:
        return {
            "calls": float(self.calls),
            "fallback_served": float(self.fallback_served),
            "primary_errors": float(self.primary_errors),
            "nonfinite_outputs": float(self.nonfinite_outputs),
        }
