"""Deterministic chaos/resilience subsystem (ROADMAP: robustness).

The regression-elimination theme of the paper (§2.2.2: Eraser, PerfGuard)
is about surviving a *misbehaving learned component*; the field studies
(Wang et al., Lehmann et al.) show learned estimators and optimizers
failing with pathological estimates, drift, stale models and slow
inference.  This package makes those failures injectable -- and the rest
of the stack survivable:

- :mod:`repro.faults.plan` -- :class:`FaultPlan` / :class:`FaultInjector`:
  seeded, hash-scheduled fault injection (exceptions, NaN/Inf/garbage
  predictions, latency spikes, stale snapshots, transient disconnects)
  wrapping estimators, learned optimizers, PilotScope drivers and the
  execution simulator, byte-for-byte reproducible per seed;
- :mod:`repro.faults.resilience` -- the primitives the serving stack uses
  to degrade gracefully: :class:`CircuitBreaker` (closed -> open ->
  half-open over virtual time), :class:`RetryPolicy` (deterministic
  backoff), :class:`FallbackEstimator` / :class:`FallbackCostModel`
  (learned -> histogram/analytic);
- :mod:`repro.faults.boundguard` -- :class:`BoundGuard`: certifies every
  served estimate against a pessimistic upper bound
  (:mod:`repro.cardest.bounds`); violations trip the breaker, route to
  the fallback path and surface as ``bounds.*`` telemetry;
- :mod:`repro.faults.clock` -- the shared :class:`VirtualClock` all
  durations live on (nothing here touches wall clock).

``benchmarks/bench_p3_chaos.py`` and the chaos scenario in
:mod:`repro.serve.scenarios` drive the whole ladder end to end.
"""

from repro.faults.boundguard import BoundGuard
from repro.faults.clock import VirtualClock
from repro.faults.plan import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultyDriver,
    FaultyEstimator,
    FaultyLearnedOptimizer,
    FaultySimulator,
    shard_fault_plan,
)
from repro.faults.resilience import (
    BreakerState,
    CircuitBreaker,
    FallbackCostModel,
    FallbackEstimator,
    RetryPolicy,
)

__all__ = [
    "FAULT_KINDS",
    "BoundGuard",
    "BreakerState",
    "CircuitBreaker",
    "FallbackCostModel",
    "FallbackEstimator",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyBackend",
    "FaultyDriver",
    "FaultyEstimator",
    "FaultyLearnedOptimizer",
    "FaultySimulator",
    "RetryPolicy",
    "VirtualClock",
    "shard_fault_plan",
]
