"""Deterministic fault injection: the plan, the injector, the wrappers.

A :class:`FaultPlan` is a pure function from ``(target, call_index)`` to
an optional :class:`FaultSpec`: every decision is derived from a sha256
hash of ``(seed, target, kind, spec_index, call_index)``, so the same
plan produces byte-identical fault sequences on every run, regardless of
host, thread timing or dict ordering.  Because the serving runtime's turn
gate serializes the execution core, per-target call counters advance in
the same order across same-seed runs -- which is what makes whole chaos
scenarios reproducible end to end.

A :class:`FaultInjector` binds a plan to a :class:`~repro.faults.clock.
VirtualClock` and a set of counters, and wraps concrete components:

- :meth:`~FaultInjector.wrap_estimator` -- injects exceptions, NaN/Inf,
  deterministic garbage values, virtual latency spikes and
  stale-snapshot answers into any cardinality estimator;
- :meth:`~FaultInjector.wrap_learned` -- injects crashes and slow
  inference into a learned optimizer's ``choose_plan``;
- :meth:`~FaultInjector.wrap_driver` -- injects transient
  driver/connection failures into a PilotScope driver's ``algo``;
- :meth:`~FaultInjector.wrap_simulator` -- injects executor failures and
  latency spikes into the execution simulator.

Injected exceptions are typed (:class:`repro.core.errors.InjectedFault`
subclasses of the matching domain error), so the resilience layer treats
them exactly like organic failures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

from repro.core.errors import (
    ConfigError,
    InjectedDriverError,
    InjectedEstimationError,
)
from repro.faults.clock import VirtualClock

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "FaultyEstimator",
    "FaultyLearnedOptimizer",
    "FaultyDriver",
    "FaultySimulator",
    "FaultyBackend",
    "shard_fault_plan",
]

#: Every fault class the harness can inject.
FAULT_KINDS = (
    "exception",  # raise a typed error from the wrapped call
    "nan",        # return float("nan")            (estimators)
    "inf",        # return float("inf")            (estimators)
    "garbage",    # return a deterministic wildly-wrong finite value
    "latency",    # virtual latency spike of `magnitude` ms (slow inference)
    "stale",      # answer from a frozen first-seen snapshot (stale stats)
    "disconnect", # transient driver/connection failure
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault class with an activation window and a per-call rate.

    ``rate`` is the per-call probability in ``[0, 1]``; ``start_call`` /
    ``end_call`` bound the half-open call-index window the spec is active
    in (``end_call=None`` means forever); ``target=None`` applies to any
    wrapped component, otherwise only to wrappers registered under that
    target name.  ``magnitude`` is the latency spike in virtual ms for
    ``latency`` faults and the scale of ``garbage`` values.
    """

    kind: str
    rate: float
    target: str | None = None
    start_call: int = 0
    end_call: int | None = None
    magnitude: float = 100.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.magnitude < 0:
            raise ConfigError(f"fault magnitude must be >= 0, got {self.magnitude}")


class FaultPlan:
    """A seeded, deterministic schedule of faults over call indices."""

    def __init__(self, specs: tuple | list = (), *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)

    def _digest(self, *parts) -> int:
        payload = "|".join(str(p) for p in ("faultplan", self.seed, *parts))
        return int.from_bytes(
            hashlib.sha256(payload.encode()).digest()[:8], "big"
        )

    def _uniform(self, *parts) -> float:
        return self._digest(*parts) / 2**64

    def decide(self, target: str, call_index: int) -> FaultSpec | None:
        """The fault (if any) to inject on ``target``'s ``call_index``-th
        call.  First matching spec wins, in declaration order."""
        for i, spec in enumerate(self.specs):
            if spec.target is not None and spec.target != target:
                continue
            if call_index < spec.start_call:
                continue
            if spec.end_call is not None and call_index >= spec.end_call:
                continue
            if self._uniform(target, spec.kind, i, call_index) < spec.rate:
                return spec
        return None

    def garbage_value(self, target: str, call_index: int, magnitude: float) -> float:
        """A deterministic pathological-but-finite estimate: magnitudes
        sweep 12 decades and roughly half the draws are negative."""
        h = self._digest(target, "garbage", call_index)
        sign = -1.0 if h & 1 else 1.0
        return sign * magnitude * 10.0 ** ((h >> 1) % 12)


class FaultInjector:
    """Binds a :class:`FaultPlan` to a clock, counters and wrappers."""

    def __init__(
        self,
        plan: FaultPlan,
        *,
        clock: VirtualClock | None = None,
        telemetry=None,
    ) -> None:
        self.plan = plan
        self.clock = clock if clock is not None else VirtualClock()
        self.telemetry = telemetry
        self.counters: dict[str, int] = {}

    def record(self, target: str, kind: str) -> None:
        key = f"{target}.{kind}"
        self.counters[key] = self.counters.get(key, 0) + 1
        if self.telemetry is not None:
            self.telemetry.incr(f"faults.injected.{kind}")
            self.telemetry.incr(f"faults.target.{target}")

    def total_injected(self) -> int:
        return sum(self.counters.values())

    def stats(self) -> dict[str, float]:
        """Gauge-friendly snapshot (numeric values, sorted keys)."""
        out: dict[str, float] = {
            k: float(v) for k, v in sorted(self.counters.items())
        }
        out["total"] = float(self.total_injected())
        out["clock_ms"] = self.clock.now_ms()
        return out

    # -- wrapper factories -------------------------------------------------------

    def wrap_estimator(self, estimator, target: str = "estimator"):
        return FaultyEstimator(estimator, self, target)

    def wrap_learned(self, learned, target: str = "learned"):
        return FaultyLearnedOptimizer(learned, self, target)

    def wrap_driver(self, driver, target: str = "driver"):
        return FaultyDriver(driver, self, target)

    def wrap_simulator(self, simulator, target: str = "simulator"):
        return FaultySimulator(simulator, self, target)

    def wrap_backend(self, backend, target: str = "backend"):
        return FaultyBackend(backend, self, target)


class _FaultyBase:
    """Shared per-wrapper call counter + fault lookup."""

    def __init__(self, inner, injector: FaultInjector, target: str) -> None:
        self.inner = inner
        self.injector = injector
        self.target = target
        self.calls = 0

    def _next_fault(self) -> FaultSpec | None:
        n = self.calls
        self.calls += 1
        spec = self.injector.plan.decide(self.target, n)
        if spec is not None:
            self.injector.record(self.target, spec.kind)
        return spec


class FaultyEstimator(_FaultyBase):
    """Cardinality estimator wrapper injecting per-call faults.

    Deliberately does *not* expose ``estimate_batch``: batched callers
    fall back to the scalar loop, so every sub-query estimate passes
    through the fault schedule individually and the per-call indices stay
    stable whichever API the planner uses.
    """

    def __init__(self, inner, injector: FaultInjector, target: str) -> None:
        super().__init__(inner, injector, target)
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}+chaos"
        self._snapshot: dict[str, float] = {}

    @property
    def estimates_version(self):
        return getattr(self.inner, "estimates_version", 0)

    def estimate(self, query) -> float:
        n = self.calls  # index of *this* call, for deterministic garbage
        spec = self._next_fault()
        if spec is None:
            value = float(self.inner.estimate(query))
            self._snapshot.setdefault(query.cache_key, value)
            return value
        kind = spec.kind
        if kind in ("exception", "disconnect"):
            raise InjectedEstimationError(
                f"injected {kind} in {self.target!r} at call {n}"
            )
        if kind == "nan":
            return float("nan")
        if kind == "inf":
            return float("inf")
        if kind == "garbage":
            return self.injector.plan.garbage_value(self.target, n, spec.magnitude)
        if kind == "latency":
            self.injector.clock.advance(spec.magnitude)
            value = float(self.inner.estimate(query))
            self._snapshot.setdefault(query.cache_key, value)
            return value
        # stale: answer from the frozen first-seen snapshot -- a model that
        # stopped tracking the data.  First sight of a query seeds the
        # snapshot from the live model.
        value = self._snapshot.get(query.cache_key)
        if value is None:
            value = float(self.inner.estimate(query))
            self._snapshot[query.cache_key] = value
        return value


class FaultyLearnedOptimizer(_FaultyBase):
    """Learned-optimizer wrapper: crashes and slow inference on
    ``choose_plan``.  ``last_call_latency_ms`` exposes the injected
    inference latency of the most recent call so callers with a per-call
    budget (:class:`repro.serve.DeploymentManager`) can enforce it."""

    def __init__(self, inner, injector: FaultInjector, target: str) -> None:
        super().__init__(inner, injector, target)
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}+chaos"
        self.last_call_latency_ms = 0.0

    def choose_plan(self, query):
        n = self.calls
        spec = self._next_fault()
        self.last_call_latency_ms = 0.0
        if spec is not None:
            if spec.kind == "latency":
                self.last_call_latency_ms = spec.magnitude
                self.injector.clock.advance(spec.magnitude)
            else:
                raise InjectedEstimationError(
                    f"injected {spec.kind} in {self.target!r} at call {n}"
                )
        return self.inner.choose_plan(query)

    def record_feedback(self, query, candidate, latency_ms: float) -> None:
        self.inner.record_feedback(query, candidate, latency_ms)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


class FaultyDriver(_FaultyBase):
    """PilotScope driver wrapper: transient failures and latency spikes on
    ``algo``.  Everything else (init, lifecycle, training phases)
    delegates to the wrapped driver."""

    def __init__(self, inner, injector: FaultInjector, target: str) -> None:
        super().__init__(inner, injector, target)
        self.name = f"{inner.name}+chaos"

    @property
    def injection_type(self) -> str:
        return self.inner.injection_type

    def algo(self, query):
        n = self.calls
        spec = self._next_fault()
        if spec is not None and spec.kind != "latency":
            raise InjectedDriverError(
                f"injected {spec.kind} in driver {self.inner.name!r} at call {n}"
            )
        outcome = self.inner.algo(query)
        if spec is not None:  # latency spike: slow, but correct
            self.injector.clock.advance(spec.magnitude)
            outcome = replace(
                outcome, latency_ms=outcome.latency_ms + spec.magnitude
            )
        return outcome

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


class FaultyBackend(_FaultyBase):
    """Serving-backend wrapper: failures and latency spikes on ``serve``.

    Wraps anything with the serving surface (``serve(query)`` returning a
    decision with ``latency_ms``) -- a shard's deployment manager or a
    synthetic backend -- so fault plans can target individual fabric
    shards by name (``target="shard03"``).  Non-latency faults raise
    :class:`~repro.core.errors.InjectedDriverError`, which the shard
    records as a breaker failure; latency faults serve correctly but
    slower.
    """

    def __init__(self, inner, injector: FaultInjector, target: str) -> None:
        super().__init__(inner, injector, target)
        self.name = f"{getattr(inner, 'name', type(inner).__name__)}+chaos"

    def serve(self, query):
        n = self.calls
        spec = self._next_fault()
        if spec is not None and spec.kind != "latency":
            raise InjectedDriverError(
                f"injected {spec.kind} in backend {self.target!r} at call {n}"
            )
        decision = self.inner.serve(query)
        if spec is not None:
            self.injector.clock.advance(spec.magnitude)
            decision = replace(
                decision, latency_ms=decision.latency_ms + spec.magnitude
            )
        return decision

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def shard_fault_plan(
    shard_targets: dict[str, float],
    *,
    seed: int = 0,
    kind: str = "exception",
    start_call: int = 0,
    end_call: int | None = None,
    magnitude: float = 100.0,
) -> FaultPlan:
    """A fault plan scoped to named fabric shards.

    ``shard_targets`` maps a shard target name (``"shard03"``) to its
    per-call fault rate; each gets one spec, so faults on one shard never
    perturb another's call indices.  Used by the fabric rebalancing tests
    and the hot-tenant drill to trip exactly one shard's breaker.
    """
    specs = tuple(
        FaultSpec(
            kind=kind,
            rate=rate,
            target=target,
            start_call=start_call,
            end_call=end_call,
            magnitude=magnitude,
        )
        for target, rate in sorted(shard_targets.items())
    )
    return FaultPlan(specs, seed=seed)


class FaultySimulator(_FaultyBase):
    """Execution-simulator wrapper: executor failures and latency spikes."""

    def execute(self, plan):
        n = self.calls
        spec = self._next_fault()
        if spec is not None and spec.kind != "latency":
            raise InjectedDriverError(
                f"injected {spec.kind} in simulator at call {n}"
            )
        result = self.inner.execute(plan)
        if spec is not None:
            self.injector.clock.advance(spec.magnitude)
            result = replace(
                result, latency_ms=result.latency_ms + spec.magnitude
            )
        return result

    def latency(self, plan) -> float:
        return self.execute(plan).latency_ms

    def __getattr__(self, attr):
        return getattr(self.inner, attr)
