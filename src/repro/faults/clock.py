"""Virtual time for the resilience subsystem.

All durations in the chaos/resilience layer (latency spikes, breaker
cooldowns, retry backoff) are *virtual milliseconds* on a shared
:class:`VirtualClock`, never wall clock: whoever owns the timeline (the
fault injector for injected latencies, the deployment manager for served
latencies) advances the clock explicitly, so two runs that make the same
calls see the same time -- the property the serving determinism gate
asserts.
"""

from __future__ import annotations

from repro.core.errors import ConfigError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonically advancing virtual-millisecond clock."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, ms: float) -> float:
        """Move time forward by ``ms`` milliseconds; returns the new time."""
        ms = float(ms)
        if ms < 0:
            raise ConfigError(f"cannot advance a clock backwards ({ms} ms)")
        self._now_ms += ms
        return self._now_ms

    def __repr__(self) -> str:
        return f"VirtualClock(now_ms={self._now_ms:g})"
