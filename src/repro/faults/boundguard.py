"""Serving-side bound-violation guard for cardinality estimation.

The pessimistic estimators of :mod:`repro.cardest.bounds` certify an
upper bound on every query's cardinality.  :class:`BoundGuard` turns
that certificate into a runtime tripwire on the serving path, one rung
above :class:`~repro.faults.resilience.FallbackEstimator` on the
degradation ladder:

- every served estimate is checked against its certified bound; a point
  estimate exceeding ``bound * tolerance`` can only be a broken model
  (the bound is sound), so the guard refuses to serve it, records a
  breaker failure and answers from the fallback (histogram/native) path
  instead -- capped at the bound, so even the fallback cannot overshoot
  the certificate;
- the online auditor's observed exact counts flow back through
  :meth:`observe_count`; an observed count above the bound means the
  *bound itself* is broken (stale sketches after unrefreshed drift, or
  a bug), which is strictly worse -- it also trips the breaker and is
  reported separately;
- a poisoned bound (NaN/Inf/negative, e.g. under fault injection) is
  sanitized UP to the cross-product bound by
  :func:`repro.cardest.base.sanitize_bound`, never down -- so the guard
  degrades to "loose", never to silently disabled;
- everything is visible in telemetry under ``bounds.*`` counters plus a
  ``bound_violation`` event per trip, and :meth:`stats` feeds the
  deployment gauge (including bound/estimate ratio percentiles).

``estimates_version`` folds all three wrapped versions and the breaker
epoch together, so cardinality caches never serve values across a guard
state change.
"""

from __future__ import annotations

import numpy as np

from repro.cardest.base import NONFINITE_FALLBACK, sanitize_bound
from repro.faults.resilience import CircuitBreaker
from repro.sql.query import query_hash

__all__ = ["BoundGuard"]


def _cross_product(db, query) -> float:
    upper = 1.0
    for t in query.tables:
        upper *= max(db.table(t).n_rows, 1)
    return upper


class BoundGuard:
    """Guard a point estimator with a certified upper-bound estimator.

    ``primary`` produces the served estimates (typically the learned
    estimator, possibly already behind a ``FallbackEstimator``);
    ``bounds`` is the pessimistic estimator; ``fallback`` answers when
    the guard refuses the primary.  ``tolerance`` is the multiplicative
    slack an estimate may exceed the bound by before the guard trips --
    1.0 enforces the certificate exactly.
    """

    def __init__(
        self,
        primary,
        bounds,
        fallback,
        *,
        db=None,
        breaker: CircuitBreaker | None = None,
        telemetry=None,
        tolerance: float = 1.0,
        name: str = "bound_guard",
    ) -> None:
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        self.primary = primary
        self.bounds = bounds
        self.fallback = fallback
        self.db = db if db is not None else bounds.db
        self.breaker = breaker
        self.telemetry = telemetry
        self.tolerance = float(tolerance)
        self.name = name
        self.checked = 0
        self.counts_observed = 0
        self.estimate_violations = 0  # point estimate exceeded the bound
        self.bound_violations = 0  # observed count exceeded the bound
        self.fallback_served = 0
        self.breaker_denied = 0
        self.primary_errors = 0
        self.bound_errors = 0
        self._ratios: list[float] = []  # bound / max(estimate, 1)

    # -- plumbing ----------------------------------------------------------------

    @property
    def estimates_version(self):
        return (
            getattr(self.primary, "estimates_version", 0),
            getattr(self.bounds, "estimates_version", 0),
            getattr(self.fallback, "estimates_version", 0),
            self.breaker.epoch if self.breaker is not None else 0,
        )

    def _incr(self, counter: str, bus=None) -> None:
        bus = bus if bus is not None else self.telemetry
        if bus is not None:
            bus.incr(counter)

    def _event(self, bus=None, **fields) -> None:
        bus = bus if bus is not None else self.telemetry
        if bus is not None:
            bus.event("bound_violation", guard=self.name, **fields)

    def certified_bound(self, query) -> float:
        """The sanitized upper bound the guard enforces for one query."""
        cross = _cross_product(self.db, query)
        try:
            raw = float(self.bounds.estimate(query))
        except Exception:
            self.bound_errors += 1
            self._incr("bounds.bound_errors")
            raw = float("nan")
        return sanitize_bound(raw, cross)

    def _serve_fallback(self, query, bound: float) -> float:
        self.fallback_served += 1
        self._incr("bounds.fallback_served")
        return min(float(self.fallback.estimate(query)), bound)

    # -- the estimator surface ----------------------------------------------------

    def estimate(self, query) -> float:
        self.checked += 1
        self._incr("bounds.checked")
        bound = self.certified_bound(query)
        if self.breaker is not None and not self.breaker.allow():
            self.breaker_denied += 1
            self._incr("bounds.breaker_denied")
            return self._serve_fallback(query, bound)
        try:
            point = float(self.primary.estimate(query))
        except Exception:
            self.primary_errors += 1
            self._incr("bounds.primary_errors")
            if self.breaker is not None:
                self.breaker.record_failure()
            return self._serve_fallback(query, bound)
        if not np.isfinite(point) or point < 0:
            # Uncertifiable output counts as exceeding any bound.
            point = float("inf")
        self._ratios.append(bound / max(min(point, NONFINITE_FALLBACK), 1.0))
        if point > bound * self.tolerance:
            self.estimate_violations += 1
            self._incr("bounds.estimate_violations")
            self._event(
                source="estimate",
                query=query_hash(query),
                bound=float(bound),
                estimate=float(min(point, NONFINITE_FALLBACK)),
            )
            if self.breaker is not None:
                self.breaker.record_failure()
            return self._serve_fallback(query, bound)
        if self.breaker is not None:
            self.breaker.record_success()
        return point

    def estimate_batch(self, queries) -> np.ndarray:
        """Batched serving stays guarded: the scalar path per query (the
        guard's value is the check, not throughput)."""
        return np.array([self.estimate(q) for q in queries], dtype=float)

    # -- the auditor surface -------------------------------------------------------

    def observe_count(self, query, observed: float, *, bus=None) -> bool:
        """Check an *observed exact count* against the certified bound.

        Fed by :class:`repro.oracle.OnlineAuditor` with ground truth from
        the serving path.  Returns True when the bound was violated --
        the sketches no longer cover the data (drift without refresh) or
        the bound estimator is buggy.  Either way the certificate is
        void: trip the breaker so serving degrades to the fallback.
        """
        self.counts_observed += 1
        bound = self.certified_bound(query)
        if float(observed) <= bound * self.tolerance:
            return False
        self.bound_violations += 1
        self._incr("bounds.bound_violations", bus)
        self._event(
            bus,
            source="observed_count",
            query=query_hash(query),
            bound=float(bound),
            observed=float(observed),
        )
        if self.breaker is not None:
            self.breaker.record_failure()
        return True

    # -- reporting ----------------------------------------------------------------

    @property
    def violations(self) -> int:
        return self.estimate_violations + self.bound_violations

    def violation_rate(self) -> float:
        return self.violations / max(self.checked + self.counts_observed, 1)

    def stats(self) -> dict[str, float]:
        """Gauge-friendly snapshot (numbers only), incl. ratio percentiles."""
        ratios = np.asarray(self._ratios, dtype=float)
        pct = (
            np.percentile(ratios, [50, 90, 99])
            if ratios.size
            else np.zeros(3)
        )
        return {
            "checked": float(self.checked),
            "counts_observed": float(self.counts_observed),
            "estimate_violations": float(self.estimate_violations),
            "bound_violations": float(self.bound_violations),
            "violation_rate": float(self.violation_rate()),
            "fallback_served": float(self.fallback_served),
            "breaker_denied": float(self.breaker_denied),
            "primary_errors": float(self.primary_errors),
            "bound_errors": float(self.bound_errors),
            "breaker_trips": float(
                self.breaker.trips if self.breaker is not None else 0
            ),
            "ratio_p50": float(pct[0]),
            "ratio_p90": float(pct[1]),
            "ratio_p99": float(pct[2]),
        }
