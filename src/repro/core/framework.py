"""The unified end-to-end learned-optimizer framework (paper §2.2).

    "For the input query Q, a learned query optimizer first generates a set
    of candidate plans using some plan exploration strategy.  Then, a
    learned risk model is applied for plan selection."

This module encodes that two-step structure directly:

- :class:`PlanExplorationStrategy` -- produces candidate plans for a query
  (hint-set steering for Bao, cardinality scaling for Lero, learned plan
  search for Neo/Balsa, DP-with-model for LEON, leading hints for HyperQO);
- :class:`RiskModel` -- scores candidates and learns from execution
  feedback (pointwise latency regression for Neo/Bao, pairwise preference
  for Lero/LEON);
- :class:`LearnedOptimizer` -- the generic loop combining the two, with an
  experience buffer and (re)training hooks.

The concrete systems in :mod:`repro.e2e` are instantiations of this
framework, which is also what the E11 ablation benchmark sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.core.interfaces import Retrainable
from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = [
    "CandidatePlan",
    "PlanExplorationStrategy",
    "RiskModel",
    "Experience",
    "LearnedOptimizer",
]


@dataclass(frozen=True)
class CandidatePlan:
    """A candidate produced by an exploration strategy.

    ``source`` identifies how it was generated (e.g. the hint-set name or
    the cardinality scale factor) -- kept for diagnostics and for arms-style
    risk models that score sources rather than plans.
    """

    plan: Plan
    source: str


@runtime_checkable
class PlanExplorationStrategy(Protocol):
    """Generates the candidate set for a query."""

    def candidates(self, query: Query) -> list[CandidatePlan]:
        ...


@runtime_checkable
class RiskModel(Retrainable, Protocol):
    """Scores candidates (lower = better) and learns from feedback.

    Extends :class:`repro.core.interfaces.Retrainable`: the ``retrain``
    half is the shared surface the lifecycle scheduler drives, so a risk
    model (or a whole :class:`LearnedOptimizer`) can be cloned and refit
    without the scheduler knowing which strategy it is.
    """

    def scores(self, candidates: Sequence[CandidatePlan]) -> list[float]:
        ...

    def observe(self, candidate: CandidatePlan, latency_ms: float) -> None:
        ...


@dataclass
class Experience:
    """One executed (query, plan, latency) triple."""

    query: Query
    candidate: CandidatePlan
    latency_ms: float


class LearnedOptimizer:
    """Generic explore-then-select learned optimizer.

    The subclasses / instantiations differ only in which strategy and risk
    model they plug in.  ``retrain_every`` controls how often (in executed
    queries) the risk model is refit from its accumulated observations;
    ``0`` disables automatic retraining (callers invoke
    :meth:`retrain` themselves).
    """

    def __init__(
        self,
        exploration: PlanExplorationStrategy,
        risk_model: RiskModel,
        *,
        retrain_every: int = 25,
        name: str = "learned",
    ) -> None:
        self.exploration = exploration
        self.risk_model = risk_model
        self.retrain_every = retrain_every
        self.name = name
        self.history: list[Experience] = []
        self._since_retrain = 0

    def choose_plan(self, query: Query) -> CandidatePlan:
        """Explore candidates and pick the risk model's favourite."""
        candidates = self.exploration.candidates(query)
        if not candidates:
            raise ValueError(f"exploration produced no candidates for {query}")
        scores = self.risk_model.scores(candidates)
        if len(scores) != len(candidates):
            raise RuntimeError(
                f"risk model returned {len(scores)} scores for "
                f"{len(candidates)} candidates"
            )
        best = min(range(len(candidates)), key=lambda i: scores[i])
        return candidates[best]

    def record_feedback(
        self, query: Query, candidate: CandidatePlan, latency_ms: float
    ) -> None:
        """Feed an execution outcome back into the risk model."""
        self.history.append(Experience(query, candidate, latency_ms))
        self.risk_model.observe(candidate, latency_ms)
        self._since_retrain += 1
        if self.retrain_every and self._since_retrain >= self.retrain_every:
            self.risk_model.retrain()
            self._since_retrain = 0

    def retrain(self) -> None:
        """Refit the risk model; the optimizer itself is :class:`Retrainable`.

        Routed through the :class:`repro.core.interfaces.Retrainable`
        surface of the risk model, so the lifecycle scheduler can drive a
        whole optimizer or a bare risk model interchangeably.
        """
        retrainable: Retrainable = self.risk_model
        retrainable.retrain()
        self._since_retrain = 0
