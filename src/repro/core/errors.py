"""Typed exception hierarchy for the whole stack.

Every error the repo raises on purpose derives from :class:`ReproError`,
so resilience code (retry loops, circuit breakers, degradation ladders)
can catch "our failures" without masking genuine bugs: a ``KeyError``
from a typo still propagates, while an :class:`EstimationError` from a
misbehaving learned model is retryable/fallback-able by construction.

Subclasses double-inherit from the builtin exception they historically
were (``RuntimeError`` / ``ValueError``), so pre-existing callers -- and
tests -- that catch the builtin keep working unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "EstimationError",
    "PlanningError",
    "DriverError",
    "SessionClosedError",
    "AdmissionRejected",
    "LatencyBudgetExceeded",
    "InjectedFault",
    "InjectedEstimationError",
    "InjectedDriverError",
]


class ReproError(Exception):
    """Base class for all deliberate errors raised by this repository."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration or argument value (bad knob, bad fraction)."""


class EstimationError(ReproError, RuntimeError):
    """A cardinality/cost estimator failed to produce an estimate."""


class PlanningError(ReproError, ValueError):
    """The planner could not produce a plan (disconnected join graph, ...)."""


class DriverError(ReproError, RuntimeError):
    """A PilotScope driver or its database connection failed.

    The console's dispatch loop treats these as transient: it retries with
    deterministic backoff and finally degrades to native execution.
    """


class SessionClosedError(DriverError):
    """An operation was attempted on a closed interactor session."""


class AdmissionRejected(ReproError, RuntimeError):
    """A request was shed by serving admission control."""

    def __init__(self, reason: str, wait_ms: float = 0.0) -> None:
        super().__init__(f"admission rejected: {reason}")
        self.reason = reason
        self.wait_ms = wait_ms


class LatencyBudgetExceeded(ReproError, RuntimeError):
    """A call finished but blew its (virtual) per-call latency budget."""


class InjectedFault(ReproError, RuntimeError):
    """Marker mixin for faults raised by the chaos harness.

    Concrete injected failures raise the matching domain error *combined*
    with this marker (see :mod:`repro.faults.plan`), so resilience code
    handles them exactly like organic failures while tests can still
    assert a failure was synthetic.
    """


class InjectedEstimationError(InjectedFault, EstimationError):
    """Synthetic estimator failure from a :class:`~repro.faults.FaultPlan`."""


class InjectedDriverError(InjectedFault, DriverError):
    """Synthetic driver/connection failure from a fault plan."""
