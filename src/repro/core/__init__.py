"""Core abstractions: the tutorial's unified view of learned query optimizers.

Section 2.2 of the paper observes that every end-to-end learned optimizer
can be subsumed under one framework: *generate candidate plans with some
exploration strategy, then select with a learned risk model*.  This package
defines that framework (:mod:`repro.core.framework`) along with the common
interfaces every component implements (:mod:`repro.core.interfaces`) and the
method registry that regenerates the paper's Table 1
(:mod:`repro.core.registry`).
"""

from repro.core.interfaces import (
    CardinalityEstimator,
    CostEstimator,
    InjectedCardinalities,
    LatencyPredictor,
    Retrainable,
    ScaledCardinalities,
)
from repro.core.framework import (
    CandidatePlan,
    LearnedOptimizer,
    PlanExplorationStrategy,
    RiskModel,
)
from repro.core.registry import MethodInfo, registry

__all__ = [
    "CardinalityEstimator",
    "CostEstimator",
    "InjectedCardinalities",
    "LatencyPredictor",
    "Retrainable",
    "ScaledCardinalities",
    "CandidatePlan",
    "LearnedOptimizer",
    "PlanExplorationStrategy",
    "RiskModel",
    "MethodInfo",
    "registry",
]
