"""Shared interfaces implemented across the repository.

Every learned (and traditional) component plugs into the optimizer through
one of these small protocols:

- :class:`CardinalityEstimator` -- ``estimate(query) -> float`` for any SPJ
  (sub-)query.  Implemented by the traditional histogram estimator and by
  every method in :mod:`repro.cardest`.
- :class:`CostEstimator` -- ``cost(plan) -> float`` (planner cost units).
- :class:`LatencyPredictor` -- ``predict_latency(plan) -> float`` (ms);
  the interface of learned cost models and risk models.

Two generic wrappers give the planner its tuning knobs:

- :class:`InjectedCardinalities` overrides specific sub-query cardinalities
  (PilotScope's batch cardinality-injection interface, §3.2);
- :class:`ScaledCardinalities` multiplies estimates by per-join-level
  factors (Lero's plan-exploration knob [79]).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = [
    "CardinalityEstimator",
    "CostEstimator",
    "LatencyPredictor",
    "InjectedCardinalities",
    "ScaledCardinalities",
    "subquery_key",
]


@runtime_checkable
class CardinalityEstimator(Protocol):
    """Anything that can estimate SPJ sub-query cardinalities."""

    def estimate(self, query: Query) -> float:
        """Estimated COUNT(*) of the query (>= 0)."""
        ...


@runtime_checkable
class CostEstimator(Protocol):
    """Anything that can assign a planner cost to a physical plan."""

    def cost(self, plan: Plan) -> float:
        ...


@runtime_checkable
class LatencyPredictor(Protocol):
    """Anything that can predict plan execution latency in milliseconds."""

    def predict_latency(self, plan: Plan) -> float:
        ...


def subquery_key(query: Query) -> str:
    """Canonical string key identifying a sub-query (tables + predicates +
    joins).  Query canonicalizes member ordering, so ``to_sql`` is stable."""
    return query.to_sql()


class InjectedCardinalities:
    """Estimator wrapper overriding chosen sub-queries with injected values.

    This is PilotScope's cardinality-injection surface: a driver computes
    cardinalities for all sub-queries of the current query in a batch and
    pushes them into the planner; anything not injected falls back to the
    wrapped estimator.
    """

    def __init__(
        self,
        base: CardinalityEstimator,
        injected: dict[str, float] | None = None,
    ) -> None:
        self.base = base
        self.injected: dict[str, float] = dict(injected or {})

    def inject(self, query: Query, cardinality: float) -> None:
        if cardinality < 0:
            raise ValueError(f"cardinality must be >= 0, got {cardinality}")
        self.injected[subquery_key(query)] = float(cardinality)

    def inject_batch(self, pairs: dict[str, float]) -> None:
        for key, value in pairs.items():
            if value < 0:
                raise ValueError(f"cardinality must be >= 0, got {value} for {key}")
        self.injected.update(pairs)

    def clear(self) -> None:
        self.injected.clear()

    def estimate(self, query: Query) -> float:
        hit = self.injected.get(subquery_key(query))
        if hit is not None:
            return hit
        return self.base.estimate(query)


class ScaledCardinalities:
    """Estimator wrapper scaling estimates by join count (Lero's knob).

    ``factor ** max(n_tables - 1, 1)`` multiplies the base estimate, so a
    factor of 10 makes every join look 10x larger per level -- steering the
    planner toward plans that are robust to underestimation, and vice versa.
    Single-table estimates are scaled once (they still influence scan and
    access-path choice).
    """

    def __init__(self, base: CardinalityEstimator, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self.base = base
        self.factor = factor

    def estimate(self, query: Query) -> float:
        power = max(query.n_tables - 1, 1)
        return self.base.estimate(query) * self.factor**power
