"""Shared interfaces implemented across the repository.

Every learned (and traditional) component plugs into the optimizer through
one of these small protocols:

- :class:`CardinalityEstimator` -- ``estimate(query) -> float`` for any SPJ
  (sub-)query, plus the batched ``estimate_batch(queries) -> np.ndarray``
  fast path.  Implemented by the traditional histogram estimator and by
  every method in :mod:`repro.cardest`.
- :class:`CostEstimator` -- ``cost(plan) -> float`` (planner cost units).
- :class:`LatencyPredictor` -- ``predict_latency(plan) -> float`` (ms);
  the interface of learned cost models and risk models.

Two generic wrappers give the planner its tuning knobs:

- :class:`InjectedCardinalities` overrides specific sub-query cardinalities
  (PilotScope's batch cardinality-injection interface, §3.2);
- :class:`ScaledCardinalities` multiplies estimates by per-join-level
  factors (Lero's plan-exploration knob [79]).

:func:`batch_estimate` dispatches to ``estimate_batch`` when an estimator
provides it and loops otherwise, so callers can batch unconditionally.
:func:`estimator_cache_tag` produces the identity component of cardinality
cache keys (see :class:`repro.optimizer.CardinalityCache`): two lookups
share cached values only when the tags match, and the tag changes whenever
the estimator's answers may change.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.engine.plans import Plan
from repro.sql.query import Query

__all__ = [
    "CardinalityEstimator",
    "CostEstimator",
    "LatencyPredictor",
    "Retrainable",
    "InjectedCardinalities",
    "ScaledCardinalities",
    "subquery_key",
    "batch_estimate",
    "estimator_cache_tag",
]


@runtime_checkable
class CardinalityEstimator(Protocol):
    """Anything that can estimate SPJ sub-query cardinalities."""

    def estimate(self, query: Query) -> float:
        """Estimated COUNT(*) of the query (>= 0)."""
        ...


@runtime_checkable
class Retrainable(Protocol):
    """Anything the retraining scheduler can drive uniformly.

    The single retraining surface in the repository: the framework's
    :class:`repro.core.framework.RiskModel` extends it, every e2e
    optimizer (``LearnedOptimizer`` and its Neo/LEON/Bao/... subclasses)
    satisfies it, and :class:`repro.lifecycle.RetrainingScheduler`'s
    default retrainer requires it of the champion's clone.  ``retrain``
    refits the component from whatever experience it has accumulated; it
    must be a no-op (not an error) when too little has.  Components that
    support a cheaper incremental update may additionally expose
    ``fine_tune()``; callers fall back to ``retrain`` when absent.
    """

    def retrain(self) -> None:
        ...


def batch_estimate(estimator: CardinalityEstimator, queries: list[Query]) -> np.ndarray:
    """Batched estimates through whatever API the estimator offers.

    Uses ``estimator.estimate_batch`` (one featurization pass + one model
    forward pass for implementations in :mod:`repro.cardest`) when present,
    and falls back to a scalar loop for minimal estimators that only
    implement the :class:`CardinalityEstimator` protocol.
    """
    queries = list(queries)
    if not queries:
        return np.zeros(0)
    batched = getattr(estimator, "estimate_batch", None)
    if batched is not None:
        return np.asarray(batched(queries), dtype=float)
    return np.array([estimator.estimate(q) for q in queries], dtype=float)


def estimator_cache_tag(estimator) -> tuple:
    """Cache-key component identifying an estimator *and* its current state.

    The tag pairs the instance identity with its ``estimates_version`` (0
    for stateless estimators), so refits/refreshes/feedback invalidate
    cached cardinalities without any explicit flush.  The steering wrappers
    unwrap recursively: a :class:`ScaledCardinalities` tag is derived from
    its base plus the factor, which lets Lero's per-factor wrapper objects
    (recreated every planning) keep hitting the same cache entries.
    """
    if isinstance(estimator, ScaledCardinalities):
        return (*estimator_cache_tag(estimator.base), "scale", estimator.factor)
    if isinstance(estimator, InjectedCardinalities):
        return (
            *estimator_cache_tag(estimator.base),
            "injected",
            id(estimator),
            estimator.generation,
        )
    version = getattr(estimator, "estimates_version", 0)
    return (type(estimator).__name__, id(estimator), version)


@runtime_checkable
class CostEstimator(Protocol):
    """Anything that can assign a planner cost to a physical plan."""

    def cost(self, plan: Plan) -> float:
        ...


@runtime_checkable
class LatencyPredictor(Protocol):
    """Anything that can predict plan execution latency in milliseconds."""

    def predict_latency(self, plan: Plan) -> float:
        ...


def subquery_key(query: Query) -> str:
    """Canonical string key identifying a sub-query (tables + predicates +
    joins).  Query canonicalizes member ordering, so the key is stable."""
    return query.cache_key


class InjectedCardinalities:
    """Estimator wrapper overriding chosen sub-queries with injected values.

    This is PilotScope's cardinality-injection surface: a driver computes
    cardinalities for all sub-queries of the current query in a batch and
    pushes them into the planner; anything not injected falls back to the
    wrapped estimator.  ``generation`` counts injection updates so cached
    plannings never see stale overrides.
    """

    def __init__(
        self,
        base: CardinalityEstimator,
        injected: dict[str, float] | None = None,
    ) -> None:
        self.base = base
        self.injected: dict[str, float] = dict(injected or {})
        self.generation = 0

    def inject(self, query: Query, cardinality: float) -> None:
        if cardinality < 0:
            raise ValueError(f"cardinality must be >= 0, got {cardinality}")
        self.injected[subquery_key(query)] = float(cardinality)
        self.generation += 1

    def inject_batch(self, pairs: dict[str, float]) -> None:
        for key, value in pairs.items():
            if value < 0:
                raise ValueError(f"cardinality must be >= 0, got {value} for {key}")
        self.injected.update(pairs)
        self.generation += 1

    def clear(self) -> None:
        self.injected.clear()
        self.generation += 1

    def estimate(self, query: Query) -> float:
        hit = self.injected.get(subquery_key(query))
        if hit is not None:
            return hit
        return self.base.estimate(query)

    def estimate_batch(self, queries: list[Query]) -> np.ndarray:
        """Injected overrides answered from the table; the rest batched."""
        queries = list(queries)
        out = np.empty(len(queries))
        miss_idx: list[int] = []
        misses: list[Query] = []
        for i, q in enumerate(queries):
            hit = self.injected.get(subquery_key(q))
            if hit is not None:
                out[i] = hit
            else:
                miss_idx.append(i)
                misses.append(q)
        if misses:
            out[miss_idx] = batch_estimate(self.base, misses)
        return out


class ScaledCardinalities:
    """Estimator wrapper scaling estimates by join count (Lero's knob).

    ``factor ** max(n_tables - 1, 1)`` multiplies the base estimate, so a
    factor of 10 makes every join look 10x larger per level -- steering the
    planner toward plans that are robust to underestimation, and vice versa.
    Single-table estimates are scaled once (they still influence scan and
    access-path choice).
    """

    def __init__(self, base: CardinalityEstimator, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        self.base = base
        self.factor = factor

    def estimate(self, query: Query) -> float:
        power = max(query.n_tables - 1, 1)
        return self.base.estimate(query) * self.factor**power

    def estimate_batch(self, queries: list[Query]) -> np.ndarray:
        queries = list(queries)
        powers = np.array([max(q.n_tables - 1, 1) for q in queries], dtype=float)
        return batch_estimate(self.base, queries) * self.factor**powers
