"""Method registry regenerating the paper's Table 1 (and beyond).

Table 1 of the tutorial lists the learned cardinality estimators by
category, method name and applied ML technique.  This registry holds those
rows *plus* the cost-model / join-order / end-to-end methods of §2.1.2-2.2,
each mapped to its implementation in this repository.  The T1 benchmark
renders the cardinality-estimator rows back into the paper's table.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

__all__ = ["MethodInfo", "registry", "cardinality_estimator_rows"]


@dataclass(frozen=True)
class MethodInfo:
    """One surveyed method and where this repo implements it."""

    component: str  # cardinality | cost_model | join_order | end_to_end | regression
    category: str  # taxonomy row group, e.g. "Query-Driven (DNN-Based Model)"
    method: str  # method name as the paper lists it
    technique: str  # "Applied ML Techniques" column
    paper_ref: str  # citation key in the tutorial, e.g. "[23]"
    impl: str  # "module:ClassName" inside this repo

    def resolve(self) -> type:
        """Import and return the implementing class."""
        module_name, _, attr = self.impl.partition(":")
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError as exc:
            raise ImportError(
                f"{self.impl!r} registered for {self.method} does not exist"
            ) from exc


_CARD = "repro.cardest"
_COST = "repro.costmodel"
_JOIN = "repro.joinorder"
_E2E = "repro.e2e"
_REG = "repro.regression"

_REGISTRY: list[MethodInfo] = [
    # ---- Table 1: learned cardinality estimators --------------------------------
    MethodInfo("cardinality", "Query-Driven (Statistical Model)", "Malik et al.",
               "Linear Model", "[36]", f"{_CARD}.querydriven:LinearQueryEstimator"),
    MethodInfo("cardinality", "Query-Driven (Statistical Model)", "Dutt et al.",
               "Tree-based Ensembles", "[10]", f"{_CARD}.querydriven:GBDTQueryEstimator"),
    MethodInfo("cardinality", "Query-Driven (Statistical Model)", "Dutt et al.",
               "XGBoost", "[9]", f"{_CARD}.querydriven:GBDTQueryEstimator"),
    MethodInfo("cardinality", "Query-Driven (Statistical Model)", "QuickSel",
               "Mixture Model", "[47]", f"{_CARD}.querydriven:QuickSelEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "Liu et al.",
               "Fully Connected Neural Network", "[32]", f"{_CARD}.querydriven:MLPQueryEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "MSCN",
               "Multi-Set Convolutional Network", "[23]", f"{_CARD}.querydriven:MSCNEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "Kim et al.",
               "Adding Pooling Layers", "[22]", f"{_CARD}.querydriven:PooledMSCNEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "CRN",
               "Learning Containment Rate", "[13]", f"{_CARD}.querydriven:CRNEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "Robust-MSCN",
               "Query Masking", "[45]", f"{_CARD}.querydriven:RobustMSCNEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "GL+",
               "Segmentation Technique", "[52]", f"{_CARD}.querydriven:GLPlusEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "Fauce",
               "Ensemble of Deep Models", "[33]", f"{_CARD}.advisor:EnsembleEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "NNGP",
               "Bayesian Deep Learning (ensemble posterior)", "[75]", f"{_CARD}.advisor:EnsembleEstimator"),
    MethodInfo("cardinality", "Query-Driven (DNN-Based Model)", "LPCE",
               "Query Re-Optimization", "[59]", f"{_CARD}.querydriven:LPCEEstimator"),
    MethodInfo("cardinality", "Data-Driven (Kernel-Based)", "Heimel et al.",
               "Kernel Density Function", "[14]", f"{_CARD}.datadriven:KDEEstimator"),
    MethodInfo("cardinality", "Data-Driven (Kernel-Based)", "Kiefer et al.",
               "Kernel Density Function", "[21]", f"{_CARD}.datadriven:JoinKDEEstimator"),
    MethodInfo("cardinality", "Data-Driven (Auto-Regression Model)", "Naru",
               "Single Table", "[71]", f"{_CARD}.datadriven:NaruEstimator"),
    MethodInfo("cardinality", "Data-Driven (Auto-Regression Model)", "NeuroCard",
               "Multi-Tables", "[70]", f"{_CARD}.datadriven:NeuroCardEstimator"),
    MethodInfo("cardinality", "Data-Driven (Probabilistic Graphical Model)", "BayesNet",
               "Bayesian Networks", "[57]", f"{_CARD}.datadriven:BayesNetEstimator"),
    MethodInfo("cardinality", "Data-Driven (Probabilistic Graphical Model)", "BayesCard",
               "Revitalized Bayesian networks", "[65]", f"{_CARD}.datadriven:BayesNetEstimator"),
    MethodInfo("cardinality", "Data-Driven (Probabilistic Graphical Model)", "DeepDB",
               "Sum-Product Network", "[17]", f"{_CARD}.datadriven:SPNEstimator"),
    MethodInfo("cardinality", "Data-Driven (Probabilistic Graphical Model)", "FLAT",
               "FSPN", "[81]", f"{_CARD}.datadriven:FSPNEstimator"),
    MethodInfo("cardinality", "Data-Driven (Probabilistic Graphical Model)", "FactorJoin",
               "Factor Graph and Join Histogram", "[64]", f"{_CARD}.datadriven:FactorJoinEstimator"),
    MethodInfo("cardinality", "Data-Driven", "Sampling",
               "Uniform Row Sampling (baseline)", "-", f"{_CARD}.traditional:SamplingEstimator"),
    MethodInfo("cardinality", "Hybrid", "UAE",
               "Deep Auto-Regression Model", "[63]", f"{_CARD}.hybrid:UAEEstimator"),
    MethodInfo("cardinality", "Hybrid", "GLUE",
               "Merging Single Table Results", "[82]", f"{_CARD}.hybrid:GLUEEstimator"),
    MethodInfo("cardinality", "Hybrid", "ALECE",
               "Attention on Transformer Model", "[30]", f"{_CARD}.hybrid:ALECEEstimator"),
    MethodInfo("cardinality", "Extensions (String Predicates)", "Astrid",
               "NLP n-gram features + deep model", "[48]", f"{_CARD}.strings:AstridEstimator"),
    MethodInfo("cardinality", "Extensions (Mixed Predicates)", "Mueller et al.",
               "Conjunctive/disjunctive featurization", "[42]", "repro.sql.query:OrPredicate"),
    # ---- Learned cost models (§2.1.2) ---------------------------------------------
    MethodInfo("cost_model", "Single Query", "Marcus & Papaemmanouil",
               "Tree Convolutional Network", "[39]", f"{_COST}.treeconv_cost:TreeConvCostModel"),
    MethodInfo("cost_model", "Single Query", "Sun & Li",
               "Tree-structured recurrent model", "[51]", f"{_COST}.recurrent_cost:TreeRecurrentCostModel"),
    MethodInfo("cost_model", "Single Query", "Zero-shot",
               "Transferable cost features", "[16]", f"{_COST}.zeroshot:ZeroShotCostModel"),
    MethodInfo("cost_model", "Concurrent Queries", "GPredictor",
               "Graph interference features", "[78]", f"{_COST}.concurrent:ConcurrentCostModel"),
    # ---- Learned join order search (§2.1.3) ------------------------------------------
    MethodInfo("join_order", "Offline Learning", "DQ / ReJoin",
               "Q-learning over join states", "[15, 24]", f"{_JOIN}.dq:DQJoinOrderSearch"),
    MethodInfo("join_order", "Offline Learning", "RTOS",
               "Tree-structured state representation", "[73]", f"{_JOIN}.rtos:RTOSJoinOrderSearch"),
    MethodInfo("join_order", "Online Learning", "SkinnerDB",
               "Monte-Carlo tree search (UCT)", "[56]", f"{_JOIN}.mcts:MCTSJoinOrderSearch"),
    MethodInfo("join_order", "Online Learning", "Eddy-RL",
               "Q-learning during execution", "[58]", f"{_JOIN}.eddy:EddyJoinOrderSearch"),
    # ---- End-to-end learned optimizers (§2.2) ---------------------------------------
    MethodInfo("end_to_end", "Steering", "Bao",
               "Hint sets + tree convolution + Thompson sampling", "[37]", f"{_E2E}.bao:BaoOptimizer"),
    MethodInfo("end_to_end", "Steering", "Lero",
               "Cardinality scaling + pairwise ranking", "[79]", f"{_E2E}.lero:LeroOptimizer"),
    MethodInfo("end_to_end", "From Scratch", "Neo",
               "Best-first plan search + tree convolution value net", "[38]", f"{_E2E}.neo:NeoOptimizer"),
    MethodInfo("end_to_end", "From Scratch", "Balsa",
               "Beam search + sim-to-real bootstrapping", "[69]", f"{_E2E}.balsa:BalsaOptimizer"),
    MethodInfo("end_to_end", "Aided", "LEON",
               "DP enumeration + pairwise comparison model", "[4]", f"{_E2E}.leon:LeonOptimizer"),
    MethodInfo("end_to_end", "Aided", "HyperQO",
               "Leading hints + ensemble variance filtering", "[72]", f"{_E2E}.hyperqo:HyperQOOptimizer"),
    MethodInfo("cost_model", "Single Query", "BASE",
               "Monotone cost-to-latency calibration", "[5]", f"{_COST}.calibrated:CalibratedCostModel"),
    MethodInfo("cost_model", "Single Query", "Saturn",
               "Plan auto-encoder embeddings", "[34]", f"{_COST}.embeddings:PlanAutoencoder"),
    MethodInfo("cost_model", "Multi-Task", "MLMTF",
               "Pre-trained multi-task plan model", "[66]", f"{_COST}.multitask:UnifiedTransferableModel"),
    MethodInfo("end_to_end", "From Scratch", "LOGER",
               "Epsilon-beam search + learned plan values", "[3]", f"{_E2E}.loger:LogerOptimizer"),
    # ---- Regression elimination (§2.2.2) ----------------------------------------------
    MethodInfo("regression", "Plugin", "Eraser",
               "Coarse filter + plan clustering", "[62]", f"{_REG}.eraser:Eraser"),
    MethodInfo("regression", "Plugin", "PerfGuard",
               "Pairwise regression guard", "[18]", f"{_REG}.perfguard:PerfGuard"),
    MethodInfo("regression", "Model Updating", "Warper",
               "Drift-targeted query generation + refit", "[29]", f"{_CARD}.drift:Warper"),
    MethodInfo("regression", "Model Updating", "DDUp",
               "Two-stage out-of-distribution detection", "[25]", f"{_CARD}.drift:DDUpDetector"),
]


def registry(component: str | None = None) -> list[MethodInfo]:
    """All registered methods, optionally filtered by component."""
    if component is None:
        return list(_REGISTRY)
    rows = [m for m in _REGISTRY if m.component == component]
    if not rows:
        valid = sorted({m.component for m in _REGISTRY})
        raise ValueError(f"unknown component {component!r}; valid: {valid}")
    return rows


def cardinality_estimator_rows() -> list[tuple[str, str, str]]:
    """The (category, method, technique) rows of the paper's Table 1."""
    return [
        (m.category, m.method, m.technique) for m in registry("cardinality")
    ]
