"""E8: Lero vs native vs Bao ([79]-style headline comparison).

Lero gets its pair-collection training phase (executing candidate plans
for 60 training queries), then all three optimizers serve the same
200-query workload.  Reported per system: total latency, speedup over
native, p50/p99 and regression count on the post-warm-up tail.

Expected shape: both learned optimizers beat native on workload latency,
with Bao's hint-steered exploration reaching the higher peak at this
scale.  Lero's gains -- and its regression tail -- are limited by pair
coverage: with only 60 pair-collection queries its comparator can still
misrank unfamiliar plan shapes, which is exactly the residual-regression
problem the E9 guards address.
"""

import numpy as np

from repro.bench import render_table
from repro.e2e import (
    BaoOptimizer,
    LeroOptimizer,
    LogerOptimizer,
    NeoOptimizer,
    OptimizationLoop,
)
from repro.sql import WorkloadGenerator


def test_e8_lero_vs_bao(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    train = WorkloadGenerator(imdb_db, seed=31).workload(
        60, 2, 5, require_predicate=True
    )
    workload = WorkloadGenerator(imdb_db, seed=32).workload(
        200, 2, 5, require_predicate=True
    )

    def run():
        results = {}

        class Native:
            def choose_plan(self, query):
                from repro.core.framework import CandidatePlan

                return CandidatePlan(imdb_optimizer.plan(query), "default")

            def record_feedback(self, *a):
                pass

        native_loop = OptimizationLoop(Native(), imdb_simulator, imdb_optimizer)
        native_loop.run(workload)
        results["native"] = native_loop.summary(tail=100)

        bao = BaoOptimizer(imdb_optimizer, seed=0)
        bao_loop = OptimizationLoop(bao, imdb_simulator, imdb_optimizer)
        bao_loop.run(workload)
        results["bao [37]"] = bao_loop.summary(tail=100)

        lero = LeroOptimizer(imdb_optimizer, seed=0)
        lero.train_offline(train, imdb_simulator.latency)
        lero_loop = OptimizationLoop(lero, imdb_simulator, imdb_optimizer)
        lero_loop.run(workload)
        results["lero [79]"] = lero_loop.summary(tail=100)

        # The from-scratch searchers, expert-bootstrapped on the training
        # workload.
        neo = NeoOptimizer(imdb_optimizer, seed=0)
        neo.bootstrap_from_expert(train, imdb_simulator.latency)
        neo_loop = OptimizationLoop(neo, imdb_simulator, imdb_optimizer)
        neo_loop.run(workload)
        results["neo [38]"] = neo_loop.summary(tail=100)

        loger = LogerOptimizer(imdb_optimizer, seed=0)
        loger.bootstrap_from_expert(train, imdb_simulator.latency)
        loger_loop = OptimizationLoop(loger, imdb_simulator, imdb_optimizer)
        loger_loop.run(workload)
        results["loger [3]"] = loger_loop.summary(tail=100)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            name,
            s["total_latency_ms"],
            s["workload_speedup"],
            s["p50_latency_ms"],
            s["p99_latency_ms"],
            s["n_regressions"],
            s["worst_regression"],
        )
        for name, s in results.items()
    ]
    print(
        render_table(
            "E8: native vs learned optimizers (200 queries, post-warm-up tail of 100)",
            ["system", "latency_ms", "speedup", "p50", "p99", "regressions", "worst"],
            rows,
            note="Lero pair-collected offline; Neo/LOGER expert-bootstrapped on 60 queries",
        )
    )
    assert results["bao [37]"]["workload_speedup"] > 1.05
    assert results["lero [79]"]["workload_speedup"] > 0.95
    assert results["native"]["workload_speedup"] == 1.0
    # From-scratch searchers are viable after bootstrap, though typically
    # below Bao at this feedback budget (the Neo/Balsa training-cost story).
    assert results["neo [38]"]["workload_speedup"] > 0.7
    assert results["loger [3]"]["workload_speedup"] > 0.7
