"""P6: vectorized kernels + parameterized plan-cache fast path, gated.

Four properties are measured and gated:

1. **Executor throughput**: the vectorized :class:`CardinalityExecutor`
   (shared sort-merge/expand kernels, key-index cache) must be >= 10x
   faster than the pre-kernel interpreted baseline -- the pure-Python
   row-at-a-time :func:`repro.oracle.reference.reference_count` -- over a
   generated workload, while producing byte-equal counts.
2. **Interpreter throughput**: the vectorized
   :class:`~repro.oracle.planexec.PlanInterpreter` must be >= 10x faster
   than a row-at-a-time plan walker (scans via scalar predicate checks,
   joins via Python dict-of-lists probing) over optimizer-produced plans,
   again with byte-equal counts.
3. **Plan-cache hit rate**: the parameterized serving scenario (few
   templates, many literal bindings) must serve every request and see a
   > 80% plan-cache hit rate.
4. **Exactness + determinism**: counts stay byte-equal to the independent
   reference on every fixture including the deep chain whose count
   exceeds 2**53 (where float64 silently rounds), and two same-seed
   cache-enabled serving runs must export byte-identical telemetry.

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p6_fastpath.py --profile quick --export out.json``)
it prints the speedup/hit-rate tables and writes the deterministic export
(counts, cache stats, telemetry -- no timings) that CI diffs across runs.
"""

import argparse
import json
import os
import time
from collections import defaultdict

from repro.bench import render_cache_stats, render_table
from repro.engine import CardinalityExecutor
from repro.engine.plans import JoinNode, ScanNode
from repro.optimizer import Optimizer
from repro.oracle.fixtures import make_deep_chain
from repro.oracle.planexec import PlanInterpreter
from repro.oracle.reference import _holds, reference_count
from repro.serve.scenarios import parameterized_scenario
from repro.sql import WorkloadGenerator
from repro.storage.datasets import make_stats_lite

_PROFILES = {
    "quick": {
        "scale": 0.3,
        "exec_queries": 10,
        "interp_queries": 6,
        "chain_tables": 8,
        "n_templates": 8,
        "bindings_per_template": 10,
        "n_sessions": 4,
    },
    "full": {
        "scale": 0.5,
        "exec_queries": 24,
        "interp_queries": 12,
        "chain_tables": 10,
        "n_templates": 12,
        "bindings_per_template": 12,
        "n_sessions": 8,
    },
}
PROFILE = os.environ.get("FASTPATH_PROFILE", "quick")
SPEEDUP_GATE = 10.0
HIT_RATE_GATE = 0.8


def _profile(profile: str | None) -> dict:
    return _PROFILES[profile or PROFILE]


def _workload(db, seed: int, n: int):
    return WorkloadGenerator(db, seed=seed).workload(
        n, 1, 3, require_predicate=True
    )


# -- the pre-kernel interpreted plan walker (baseline, kept pure Python) ------------


def _interpreted_scan(db, node: ScanNode) -> dict[str, list[int]]:
    tbl = db.table(node.table)
    cols = {p.column.column: tbl.values(p.column.column) for p in node.predicates}
    rows = []
    for r in range(tbl.n_rows):
        if all(_holds(p, cols[p.column.column][r]) for p in node.predicates):
            rows.append(r)
    return {node.table: rows}


def _interpreted_join(db, node: JoinNode) -> dict[str, list[int]]:
    left = _interpreted_walk(db, node.left)
    right = _interpreted_walk(db, node.right)
    first, rest = node.conditions[0], node.conditions[1:]
    if first.left.table in left:
        l_ref, r_ref = first.left, first.right
    else:
        l_ref, r_ref = first.right, first.left
    build_vals = db.table(r_ref.table).values(r_ref.column)
    index: dict = defaultdict(list)
    for i, rrow in enumerate(right[r_ref.table]):
        index[build_vals[rrow]].append(i)
    probe_vals = db.table(l_ref.table).values(l_ref.column)
    out: dict[str, list[int]] = {t: [] for t in (*left, *right)}
    for j, lrow in enumerate(left[l_ref.table]):
        for i in index.get(probe_vals[lrow], ()):
            for t, rows in left.items():
                out[t].append(rows[j])
            for t, rows in right.items():
                out[t].append(rows[i])
    for cond in rest:
        lv = db.table(cond.left.table).values(cond.left.column)
        rv = db.table(cond.right.table).values(cond.right.column)
        keep = [
            k
            for k, (a, b) in enumerate(
                zip(out[cond.left.table], out[cond.right.table])
            )
            if lv[a] == rv[b]
        ]
        out = {t: [rows[k] for k in keep] for t, rows in out.items()}
    return out


def _interpreted_walk(db, node) -> dict[str, list[int]]:
    if isinstance(node, ScanNode):
        return _interpreted_scan(db, node)
    return _interpreted_join(db, node)


def interpreted_plan_count(db, plan) -> int:
    """Row-at-a-time plan execution: the shape of the code every consumer
    hand-rolled before the shared kernels existed, minus the numpy."""
    rows = _interpreted_walk(db, plan.root)
    return len(next(iter(rows.values())))


# -- measured passes --------------------------------------------------------------


def executor_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Vectorized executor vs the pure-Python reference, same workload."""
    p = _profile(profile)
    db = make_stats_lite(scale=p["scale"], seed=seed)
    queries = _workload(db, seed + 17, p["exec_queries"])

    t0 = time.perf_counter()
    baseline = [reference_count(db, q) for q in queries]
    t_base = time.perf_counter() - t0

    executor = CardinalityExecutor(db)
    t0 = time.perf_counter()
    counts = [executor.cardinality(q) for q in queries]
    t_vec = time.perf_counter() - t0

    return {
        "n_queries": len(queries),
        "counts": counts,
        "baseline_counts": baseline,
        "t_baseline_s": t_base,
        "t_vectorized_s": t_vec,
        "speedup": t_base / max(t_vec, 1e-9),
    }


def interpreter_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Vectorized plan interpreter vs the row-at-a-time walker, same plans."""
    p = _profile(profile)
    db = make_stats_lite(scale=p["scale"], seed=seed)
    queries = _workload(db, seed + 29, p["interp_queries"])
    optimizer = Optimizer(db)
    plans = [optimizer.plan(q) for q in queries]

    t0 = time.perf_counter()
    baseline = [interpreted_plan_count(db, plan) for plan in plans]
    t_base = time.perf_counter() - t0

    interp = PlanInterpreter(db)
    t0 = time.perf_counter()
    counts = [interp.count(plan) for plan in plans]
    t_vec = time.perf_counter() - t0

    return {
        "n_plans": len(plans),
        "counts": counts,
        "baseline_counts": baseline,
        "t_baseline_s": t_base,
        "t_vectorized_s": t_vec,
        "speedup": t_base / max(t_vec, 1e-9),
    }


def serving_pass(seed: int = 0, profile: str | None = None):
    """One cache-enabled parameterized serving run; returns the scenario."""
    p = _profile(profile)
    scenario = parameterized_scenario(
        scale=p["scale"],
        seed=seed,
        n_templates=p["n_templates"],
        bindings_per_template=p["bindings_per_template"],
        n_sessions=p["n_sessions"],
    )
    report = scenario.run()
    return scenario, report


def fixture_counts(seed: int = 0, profile: str | None = None) -> list[dict]:
    """Exactness rows: executor vs reference (and closed form) per fixture."""
    p = _profile(profile)
    rows = []

    db = make_stats_lite(scale=p["scale"], seed=seed)
    executor = CardinalityExecutor(db)
    for i, q in enumerate(_workload(db, seed + 17, p["exec_queries"])):
        rows.append(
            {
                "fixture": f"stats_lite/q{i}",
                "count": executor.cardinality(q),
                "reference": reference_count(db, q),
            }
        )

    chain_db, chain_q, expected = make_deep_chain(p["chain_tables"], seed=seed)
    rows.append(
        {
            "fixture": f"deep_chain/{p['chain_tables']} (> 2**53)",
            "count": CardinalityExecutor(chain_db).cardinality(chain_q),
            "reference": reference_count(chain_db, chain_q),
            "closed_form": expected,
        }
    )
    return rows


# -- gates (pytest-collectable) -----------------------------------------------------


def test_p6_executor_speedup_and_exactness():
    result = executor_pass(seed=0)
    assert result["counts"] == result["baseline_counts"]
    print(
        render_table(
            f"P6: executor vs interpreted reference ({PROFILE})",
            ["queries", "baseline_s", "vectorized_s", "speedup"],
            [(
                result["n_queries"],
                f"{result['t_baseline_s']:.3f}",
                f"{result['t_vectorized_s']:.3f}",
                f"{result['speedup']:.1f}x",
            )],
            note=f"gate: >= {SPEEDUP_GATE:.0f}x",
        )
    )
    assert result["speedup"] >= SPEEDUP_GATE, (
        f"executor speedup {result['speedup']:.1f}x below the "
        f"{SPEEDUP_GATE:.0f}x gate"
    )


def test_p6_interpreter_speedup_and_exactness():
    result = interpreter_pass(seed=0)
    assert result["counts"] == result["baseline_counts"]
    print(
        render_table(
            f"P6: plan interpreter vs row-at-a-time walker ({PROFILE})",
            ["plans", "baseline_s", "vectorized_s", "speedup"],
            [(
                result["n_plans"],
                f"{result['t_baseline_s']:.3f}",
                f"{result['t_vectorized_s']:.3f}",
                f"{result['speedup']:.1f}x",
            )],
            note=f"gate: >= {SPEEDUP_GATE:.0f}x",
        )
    )
    assert result["speedup"] >= SPEEDUP_GATE, (
        f"interpreter speedup {result['speedup']:.1f}x below the "
        f"{SPEEDUP_GATE:.0f}x gate"
    )


def test_p6_plan_cache_hit_rate():
    scenario, report = serving_pass(seed=0)
    stats = scenario.plan_cache.stats()
    print(render_cache_stats(stats, title=f"P6: plan cache ({PROFILE})"))
    assert report.n_served == scenario.n_requests, "requests were dropped"
    assert stats["hit_rate"] > HIT_RATE_GATE, (
        f"plan-cache hit rate {stats['hit_rate']:.2f} below the "
        f"{HIT_RATE_GATE:.0%} gate"
    )
    # The cache served real traffic, not a no-op: one miss per template
    # (plus re-plannings after any invalidation), the rest hits.
    assert stats["hits"] + stats["misses"] == scenario.n_requests


def test_p6_counts_byte_equal_on_fixtures():
    rows = fixture_counts(seed=0)
    for row in rows:
        assert row["count"] == row["reference"], row["fixture"]
        if "closed_form" in row:
            assert row["count"] == row["closed_form"], row["fixture"]
    chain = rows[-1]
    assert chain["count"] > 2**53  # past float64 exactness
    print(
        render_table(
            f"P6: fixture exactness ({PROFILE})",
            ["fixture", "count", "matches"],
            [(r["fixture"], r["count"], "yes") for r in rows],
        )
    )


def test_p6_determinism_same_seed_exports():
    exports, cache_stats = [], []
    for _ in range(2):
        scenario, _ = serving_pass(seed=3)
        exports.append(scenario.deployment.telemetry.to_json())
        cache_stats.append(scenario.plan_cache.stats())
    assert exports[0] == exports[1], "same-seed cache-enabled runs diverged"
    assert cache_stats[0] == cache_stats[1]


# -- script entry point -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic export (counts, cache stats, "
        "telemetry; no timings) here",
    )
    args = parser.parse_args(argv)

    exec_result = executor_pass(seed=args.seed, profile=args.profile)
    interp_result = interpreter_pass(seed=args.seed, profile=args.profile)
    scenario, report = serving_pass(seed=args.seed, profile=args.profile)
    rows = fixture_counts(seed=args.seed, profile=args.profile)
    stats = scenario.plan_cache.stats()

    print(
        render_table(
            f"P6: fast path ({args.profile}), seed={args.seed}",
            ["stage", "work", "baseline_s", "vectorized_s", "speedup"],
            [
                (
                    "executor",
                    f"{exec_result['n_queries']} queries",
                    f"{exec_result['t_baseline_s']:.3f}",
                    f"{exec_result['t_vectorized_s']:.3f}",
                    f"{exec_result['speedup']:.1f}x",
                ),
                (
                    "interpreter",
                    f"{interp_result['n_plans']} plans",
                    f"{interp_result['t_baseline_s']:.3f}",
                    f"{interp_result['t_vectorized_s']:.3f}",
                    f"{interp_result['speedup']:.1f}x",
                ),
            ],
            note=f"gate: >= {SPEEDUP_GATE:.0f}x each",
        )
    )
    print(
        render_cache_stats(
            stats,
            title="P6: parameterized plan cache",
            note=f"{report.n_served}/{scenario.n_requests} served; "
            f"gate: hit rate > {HIT_RATE_GATE:.0%}",
        )
    )

    exact = all(
        r["count"] == r["reference"]
        and r["count"] == r.get("closed_form", r["count"])
        for r in rows
    )
    ok = (
        exec_result["speedup"] >= SPEEDUP_GATE
        and interp_result["speedup"] >= SPEEDUP_GATE
        and stats["hit_rate"] > HIT_RATE_GATE
        and report.n_served == scenario.n_requests
        and exact
        and exec_result["counts"] == exec_result["baseline_counts"]
        and interp_result["counts"] == interp_result["baseline_counts"]
    )

    if args.export:
        # Deterministic content only: no wall-clock timings or speedups.
        export = {
            "profile": args.profile,
            "seed": args.seed,
            "executor_counts": exec_result["counts"],
            "interpreter_counts": interp_result["counts"],
            "fixtures": [
                {k: str(v) for k, v in row.items()} for row in rows
            ],
            "plan_cache": stats,
            "n_served": report.n_served,
            "telemetry": json.loads(scenario.deployment.telemetry.to_json()),
        }
        with open(args.export, "w") as fh:
            json.dump(export, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        print(f"fast-path report written to {args.export}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
