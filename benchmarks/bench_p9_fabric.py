"""P9: the horizontally sharded, multi-tenant serving fabric.

Four properties are measured and gated:

1. **Scale**: the synthetic fabric serves >= 10^5 virtual queries across
   >= 16 shards in one run, with every request admitted (all-interactive
   tenants, admission control off) -- this is the traffic volume the
   remaining gates are judged at.
2. **Horizontal efficiency**: simulated (virtual-time) throughput at 16
   shards must reach >= 0.7x the ideal 16x speedup over the same workload
   on one shard -- routing, quotas and aggregation must not serialize
   the fabric.
3. **Tenant isolation**: an 8x hot batch tenant flooding the fabric
   (total offered load ~2.8x capacity) must not degrade the interactive
   victim tenants' p99 beyond a bounded ratio of the fair-share baseline
   at the *same* absolute victim arrival rate; QoS shedding plus an
   optional per-tenant quota absorb the abuse.
4. **Determinism**: two same-seed runs of the 10^5-query fabric must
   produce byte-identical merged telemetry exports (traces included) and
   identical router assignments.

Profiles: ``quick`` (CI smoke, 10^5 x 16 shards) or ``full`` (2x10^5 x
32 shards); as a script
(``python benchmarks/bench_p9_fabric.py --profile quick --export out.json``)
it prints the gate tables and writes the deterministic export that CI
diffs across two runs.
"""

import argparse
import json
import os

from repro.bench import render_shard_stats, render_table
from repro.serve import RuntimeConfig
from repro.serve.fabric import (
    FabricConfig,
    TenantSpec,
    build_fabric_schedule,
    hot_tenant_specs,
    synthetic_fabric,
    synthetic_queries,
)

_PROFILES = {
    "quick": {
        "scale_requests": 100_000,
        "scale_shards": 16,
        "fairness_requests": 24_000,
        "fairness_shards": 8,
    },
    "full": {
        "scale_requests": 200_000,
        "scale_shards": 32,
        "fairness_requests": 48_000,
        "fairness_shards": 8,
    },
}
PROFILE = os.environ.get("FABRIC_PROFILE", "quick")
#: gate 2: minimum simulated-throughput efficiency vs the ideal N-shard speedup
_MIN_EFFICIENCY = 0.7
#: gate 3: max victim-tenant p99 inflation under the hot-tenant flood
_MAX_VICTIM_P99_RATIO = 3.0
#: fairness drill geometry (see fairness_pass)
_N_VICTIMS = 3
_HOT_WEIGHT = 8.0
_FAIR_INTERARRIVAL_MS = 0.6


def _profile(profile: str | None) -> dict:
    return _PROFILES[profile or PROFILE]


def _open_config() -> RuntimeConfig:
    """Admission control off: every routed request is served."""
    return RuntimeConfig(timeout_ms=None, queue_capacity=None, max_in_flight=None)


def _scale_run(n_shards: int, n_requests: int, seed: int):
    """One saturating all-interactive run of the synthetic fabric."""
    specs = tuple(TenantSpec(f"tenant{i:02d}") for i in range(8))
    scenario = synthetic_fabric(
        n_shards,
        specs,
        seed=seed,
        n_workers=2,
        shard_config=_open_config(),
        fabric_config=FabricConfig(seed=seed, keep_outcomes=False),
    )
    queries = synthetic_queries(240, seed=seed)
    schedule = build_fabric_schedule(
        (queries * (n_requests // len(queries) + 1))[:n_requests],
        specs,
        seed=seed,
        mean_interarrival_ms=0.05,
    )
    report = scenario.fabric.run(schedule)
    return scenario, report


def scaling_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gates 1+2: 10^5+ requests over 16+ shards at >= 0.7x ideal."""
    p = _profile(profile)
    out = {"n_requests": p["scale_requests"], "n_shards": p["scale_shards"]}
    for label, shards in (("single", 1), ("sharded", p["scale_shards"])):
        scenario, report = _scale_run(shards, p["scale_requests"], seed)
        out[label] = {
            "shards": shards,
            "served": report.n_served,
            "rejected": dict(sorted(report.rejected.items())),
            "simulated_qps": round(report.simulated_qps, 4),
            "span_ms": round(report.simulated_span_ms, 4),
            "shard_served": list(report.shard_served),
        }
        if label == "sharded":
            out["shard_table"] = render_shard_stats(
                scenario.fabric,
                title=f"P9: {shards}-shard fabric, {p['scale_requests']:,} requests",
            )
    out["efficiency"] = round(
        out["sharded"]["simulated_qps"]
        / (p["scale_shards"] * out["single"]["simulated_qps"]),
        4,
    )
    return out


def _fairness_run(specs, n_requests, interarrival_ms, seed, n_shards):
    scenario = synthetic_fabric(
        n_shards,
        specs,
        seed=seed,
        n_workers=2,
        shard_config=_open_config(),
        fabric_config=FabricConfig(
            seed=seed,
            background_shed_backlog=4,
            batch_shed_backlog=8,
            keep_outcomes=False,
        ),
    )
    queries = synthetic_queries(240, seed=seed)
    schedule = build_fabric_schedule(
        (queries * (n_requests // len(queries) + 1))[:n_requests],
        specs,
        seed=seed,
        mean_interarrival_ms=interarrival_ms,
    )
    report = scenario.fabric.run(schedule)
    victims = sorted(t for t in report.tenant_latency if t.startswith("victim"))
    return {
        "served": report.n_served,
        "rejected": dict(sorted(report.rejected.items())),
        "victim_p99_ms": round(
            max(report.tenant_latency[t]["p99"] for t in victims), 4
        ),
        "tenants": {
            t: {
                "count": int(tl["count"]),
                "p50_ms": round(tl["p50"], 4),
                "p99_ms": round(tl["p99"], 4),
            }
            for t, tl in sorted(report.tenant_latency.items())
        },
    }


def fairness_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 3: victim p99 under the hot-tenant flood stays bounded.

    Three arms at the same absolute victim arrival rate: ``fair`` (every
    tenant weight 1), ``skew`` (one batch tenant at 8x weight -- the
    flood, absorbed by QoS shedding) and ``skew_quota`` (same flood with
    a per-tenant token-bucket quota on the hot tenant as well).
    """
    p = _profile(profile)
    n, shards = p["fairness_requests"], p["fairness_shards"]
    fair_specs = hot_tenant_specs(n_victims=_N_VICTIMS, hot_weight=1.0)
    skew_specs = hot_tenant_specs(n_victims=_N_VICTIMS, hot_weight=_HOT_WEIGHT)
    quota_specs = hot_tenant_specs(
        n_victims=_N_VICTIMS, hot_weight=_HOT_WEIGHT, hot_rate_per_s=500.0
    )
    # keep the *victims'* absolute arrival rate identical across arms:
    # they are 3/4 of the fair mix but only 3/11 of the skewed mix.
    fair_w = _N_VICTIMS + 1.0
    skew_w = _N_VICTIMS + _HOT_WEIGHT
    skew_interarrival = _FAIR_INTERARRIVAL_MS * fair_w / skew_w
    out = {
        "fair": _fairness_run(fair_specs, n, _FAIR_INTERARRIVAL_MS, seed, shards),
        "skew": _fairness_run(skew_specs, n, skew_interarrival, seed, shards),
        "skew_quota": _fairness_run(
            quota_specs, n, skew_interarrival, seed, shards
        ),
    }
    for arm in ("skew", "skew_quota"):
        out[arm]["victim_p99_ratio"] = round(
            out[arm]["victim_p99_ms"] / out["fair"]["victim_p99_ms"], 4
        )
    return out


def determinism_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 4: two fresh same-seed fabrics export identical bytes."""
    p = _profile(profile)
    exports, assignments = [], []
    for _ in range(2):
        scenario, _report = _scale_run(
            p["scale_shards"], p["scale_requests"], seed
        )
        exports.append(scenario.fabric.export_json(include_traces=True))
        assignments.append(list(scenario.fabric.router.assignments))
    return {
        "byte_identical": exports[0] == exports[1],
        "assignments_identical": assignments[0] == assignments[1],
        "export_bytes": len(exports[0]),
        "telemetry": json.loads(exports[0]),
    }


def fabric_export(seed: int = 0, profile: str | None = None) -> str:
    """The full deterministic report: all four gates, one JSON blob."""
    scaling = scaling_pass(seed=seed, profile=profile)
    scaling = {k: v for k, v in scaling.items() if k != "shard_table"}
    payload = {
        "profile": profile or PROFILE,
        "seed": seed,
        "scaling": scaling,
        "fairness": fairness_pass(seed=seed, profile=profile),
        "determinism": determinism_pass(seed=seed, profile=profile),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def test_p9_scale_and_horizontal_efficiency():
    out = scaling_pass(seed=0)
    print(out["shard_table"])
    print(
        render_table(
            f"P9: horizontal scaling ({PROFILE})",
            ["arm", "shards", "served", "simulated_qps", "efficiency"],
            [
                (
                    label,
                    out[label]["shards"],
                    out[label]["served"],
                    out[label]["simulated_qps"],
                    out["efficiency"] if label == "sharded" else 1.0,
                )
                for label in ("single", "sharded")
            ],
            note="efficiency = sharded qps / (n_shards x single-shard qps)",
        )
    )
    assert out["n_requests"] >= 100_000
    assert out["n_shards"] >= 16
    for label in ("single", "sharded"):
        assert out[label]["served"] == out["n_requests"], (
            f"{label} dropped requests: {out[label]['rejected']}"
        )
    assert min(out["sharded"]["shard_served"]) > 0, "a shard served nothing"
    assert out["efficiency"] >= _MIN_EFFICIENCY, (
        f"16-shard efficiency {out['efficiency']} below {_MIN_EFFICIENCY}"
    )


def test_p9_hot_tenant_isolation():
    out = fairness_pass(seed=0)
    rows = []
    for arm in ("fair", "skew", "skew_quota"):
        r = out[arm]
        rows.append(
            (
                arm,
                r["served"],
                sum(r["rejected"].values()),
                r["tenants"]["hot"]["p99_ms"],
                r["victim_p99_ms"],
                r.get("victim_p99_ratio", 1.0),
            )
        )
    print(
        render_table(
            f"P9: hot-tenant drill ({PROFILE})",
            ["arm", "served", "shed", "hot_p99", "victim_p99", "ratio"],
            rows,
            note="same absolute victim arrival rate in every arm",
        )
    )
    # the flood really floods: most of the hot tenant's traffic is shed
    assert out["skew"]["rejected"].get("qos_shed", 0) > 0
    assert out["skew_quota"]["rejected"].get("quota", 0) > 0
    # and the victims barely notice
    for arm in ("skew", "skew_quota"):
        assert out[arm]["victim_p99_ratio"] <= _MAX_VICTIM_P99_RATIO, (
            f"{arm} victim p99 ratio {out[arm]['victim_p99_ratio']} "
            f"exceeds {_MAX_VICTIM_P99_RATIO}"
        )


def test_p9_determinism_byte_identical_exports():
    out = determinism_pass(seed=3)
    assert out["byte_identical"], "same-seed fabric exports diverged"
    assert out["assignments_identical"], "same-seed router assignments diverged"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic fabric report (JSON) here",
    )
    args = parser.parse_args(argv)
    blob = fabric_export(seed=args.seed, profile=args.profile)
    payload = json.loads(blob)
    scaling, fairness = payload["scaling"], payload["fairness"]
    print(
        render_table(
            f"P9: horizontal scaling ({args.profile}), seed={args.seed}",
            ["arm", "shards", "served", "simulated_qps"],
            [
                (
                    label,
                    scaling[label]["shards"],
                    scaling[label]["served"],
                    scaling[label]["simulated_qps"],
                )
                for label in ("single", "sharded")
            ],
            note=f"efficiency={scaling['efficiency']}",
        )
    )
    print(
        render_table(
            "P9: hot-tenant drill",
            ["arm", "served", "shed", "victim_p99", "ratio"],
            [
                (
                    arm,
                    fairness[arm]["served"],
                    sum(fairness[arm]["rejected"].values()),
                    fairness[arm]["victim_p99_ms"],
                    fairness[arm].get("victim_p99_ratio", 1.0),
                )
                for arm in ("fair", "skew", "skew_quota")
            ],
        )
    )
    ok = scaling["efficiency"] >= _MIN_EFFICIENCY
    ok = ok and payload["determinism"]["byte_identical"]
    for arm in ("skew", "skew_quota"):
        ok = ok and fairness[arm]["victim_p99_ratio"] <= _MAX_VICTIM_P99_RATIO
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(blob)
        print(f"fabric report written to {args.export}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
