"""E10: the PilotScope deployment demo (paper §3.2).

Replays the tutorial's demonstration: the same database serves a workload
(1) natively, (2) with a learned cardinality estimator deployed through
the batch-injection driver, (3) with the Bao driver, and (4) with the Lero
driver -- all through the console, transparently to the "user".  Reports
per-deployment workload latency plus the middleware's per-query planning
overhead (wall-clock seconds spent outside simulated execution).

Expected shape: drivers preserve result correctness exactly, learned
deployments match or beat native latency after their training phases, and
middleware overhead stays in the low-millisecond range per query.
"""

import time

import numpy as np

from repro.bench import render_table
from repro.cardest import FSPNEstimator
from repro.engine import CardinalityExecutor
from repro.pilotscope import (
    BaoDriver,
    CardinalityInjectionDriver,
    LeroDriver,
    PilotScopeConsole,
    SimulatedPostgreSQL,
)
from repro.sql import WorkloadGenerator


def test_e10_pilotscope_deployments(benchmark, stats_db):
    pg = SimulatedPostgreSQL(stats_db)
    truth = CardinalityExecutor(stats_db)
    gen = WorkloadGenerator(stats_db, seed=61)
    train = gen.workload(60, 1, 4, require_predicate=True)
    workload = WorkloadGenerator(stats_db, seed=62).workload(
        120, 1, 4, require_predicate=True
    )
    expected = [truth.cardinality(q) for q in workload]

    def run():
        rows = []

        def replay(name, setup):
            console = PilotScopeConsole(pg)
            setup(console)
            sim_before = pg.simulator.total_latency_ms
            wall0 = time.perf_counter()
            outs = [console.execute(q) for q in workload]
            wall = time.perf_counter() - wall0
            sim_ms = pg.simulator.total_latency_ms - sim_before
            for out, want in zip(outs, expected):
                assert out.cardinality == want, f"{name} broke correctness"
            served_lat = sum(o.latency_ms for o in outs)
            overhead_ms = max(wall * 1000, 0.0) / len(workload)
            rows.append((name, served_lat, overhead_ms))
            return served_lat

        native_lat = replay("native", lambda c: None)

        def setup_cardest(console):
            driver = CardinalityInjectionDriver(FSPNEstimator(stats_db))
            console.register_driver(driver)
            console.start_driver("cardinality_injection")

        replay("fspn via injection driver", setup_cardest)

        def setup_bao(console):
            driver = BaoDriver(seed=0)
            console.register_driver(driver)
            console.start_driver("bao_driver")

        replay("bao driver", setup_bao)

        def setup_lero(console):
            driver = LeroDriver(seed=0)
            console.register_driver(driver)
            console.start_driver("lero_driver")
            driver.collect_training_data(train[:25])
            driver.train()

        replay("lero driver", setup_lero)
        return rows, native_lat

    rows, native_lat = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E10: PilotScope deployments (120 queries; correctness asserted per query)",
            ["deployment", "workload_latency_ms", "middleware_ms/query"],
            rows,
            note="latency is simulated execution; overhead is real wall-clock planning cost",
        )
    )
    # Every deployment answered every query correctly (asserted inline);
    # the middleware's planning overhead stays modest.
    for name, _, overhead in rows:
        assert overhead < 500, f"{name} overhead too high"
