"""E7: Bao vs the native optimizer over training episodes ([37]-style).

Runs Bao on a 300-query JOB-style workload with execution feedback,
reporting the workload-speedup learning curve (windows of 50 queries) and
the final-tail latency distribution vs native -- the two exhibits Bao's
evaluation leads with.

Expected shape: ~1x during warm-up (Bao ships native plans), rising past
1.2-1.5x once the latency model converges, with the tail (p99) improving
at least as much as the median.
"""

import numpy as np

from repro.bench import render_table
from repro.e2e import BaoOptimizer, OptimizationLoop
from repro.sql import WorkloadGenerator


def test_e7_bao_learning_curve(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    workload = WorkloadGenerator(imdb_db, seed=21).workload(
        300, 2, 5, require_predicate=True
    )

    def run():
        bao = BaoOptimizer(imdb_optimizer, seed=0)
        loop = OptimizationLoop(bao, imdb_simulator, imdb_optimizer)
        loop.run(workload)
        windows = []
        for start in range(0, len(workload), 50):
            chunk = loop.results[start : start + 50]
            lat = sum(r.latency_ms for r in chunk)
            nat = sum(r.native_latency_ms for r in chunk)
            reg = sum(1 for r in chunk if r.regression > 1.1)
            windows.append((f"{start}-{start+50}", nat / max(lat, 1e-9), reg))
        return windows, loop.summary(tail=100)

    windows, tail = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E7: Bao workload-speedup learning curve (windows of 50 queries)",
            ["queries", "speedup (native/bao)", "regressions"],
            windows,
            note=(
                f"final-tail summary: speedup={tail['workload_speedup']:.2f}, "
                f"p99 {tail['native_p99_latency_ms']:.1f} -> {tail['p99_latency_ms']:.1f} ms, "
                f"worst regression {tail['worst_regression']:.2f}x"
            ),
        )
    )
    # Early windows pay Thompson-sampling exploration cost; later windows
    # must recover it and beat native (the Bao learning-curve shape).
    first_window_speedup = windows[0][1]
    last_window_speedup = windows[-1][1]
    assert last_window_speedup > first_window_speedup
    assert last_window_speedup > 1.1, "Bao should beat native after training"
    assert tail["workload_speedup"] > 1.1
    early_regressions = windows[0][2]
    late_regressions = windows[-1][2]
    assert late_regressions <= early_regressions, "regressions should fade with training"
