"""E11: ablation of the unified framework (paper §2.2).

Crosses the plan-exploration strategies (hint sets / cardinality scaling /
leading-table hints) with the risk models (pointwise tree-conv, pairwise
comparator, variance-filtered ensemble): 9 learned optimizers, each given
the same offline warm-up (observe up to 3 executed candidates for 30
training queries) and the same 150-query evaluation workload.

Expected shape: every combination is viable (the framework claim); hint
sets + pointwise reproduces Bao, scaling + pairwise reproduces Lero;
pairwise/ensemble risk models have smaller regression tails than the
pointwise model at similar or slightly lower speedup.
"""

import numpy as np

from repro.bench import render_table
from repro.core.framework import LearnedOptimizer
from repro.costmodel import PlanFeaturizer
from repro.e2e import (
    CardinalityScalingExploration,
    EnsembleLatencyModel,
    HintSetExploration,
    LeadingTableExploration,
    OptimizationLoop,
    PairwisePlanComparator,
    TreeConvLatencyModel,
)
from repro.sql import WorkloadGenerator


def test_e11_framework_ablation(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    warmup = WorkloadGenerator(imdb_db, seed=71).workload(
        30, 2, 5, require_predicate=True
    )
    workload = WorkloadGenerator(imdb_db, seed=72).workload(
        150, 2, 5, require_predicate=True
    )
    featurizer = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)

    strategies = {
        "hints": lambda: HintSetExploration(imdb_optimizer),
        "card_scale": lambda: CardinalityScalingExploration(imdb_optimizer),
        "leading": lambda: LeadingTableExploration(imdb_optimizer),
    }
    risk_models = {
        "pointwise": lambda: TreeConvLatencyModel(featurizer, thompson=False, seed=0),
        "pairwise": lambda: PairwisePlanComparator(featurizer, seed=0),
        "variance": lambda: EnsembleLatencyModel(featurizer, seed=0),
    }

    def run():
        rows = []
        outcomes = {}
        for s_name, make_strategy in strategies.items():
            for r_name, make_risk in risk_models.items():
                strategy = make_strategy()
                risk = make_risk()
                # Shared offline warm-up: observe executed candidates.
                for q in warmup:
                    for cand in strategy.candidates(q)[:3]:
                        risk.observe(
                            cand, imdb_simulator.execute(cand.plan).latency_ms
                        )
                risk.retrain()
                learned = LearnedOptimizer(
                    strategy, risk, retrain_every=30, name=f"{s_name}+{r_name}"
                )
                loop = OptimizationLoop(learned, imdb_simulator, imdb_optimizer)
                loop.run(workload)
                s = loop.summary(tail=75)
                outcomes[(s_name, r_name)] = s
                rows.append(
                    (
                        s_name,
                        r_name,
                        s["workload_speedup"],
                        s["n_regressions"],
                        s["worst_regression"],
                    )
                )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E11: exploration strategy x risk model (tail of 75 queries)",
            ["exploration", "risk model", "speedup", "regressions", "worst"],
            rows,
            note="hints+pointwise ~ Bao; card_scale+pairwise ~ Lero; leading+variance ~ HyperQO",
        )
    )
    speedups = [s["workload_speedup"] for s in outcomes.values()]
    assert all(sp > 0.7 for sp in speedups), "every combination must stay viable"
    assert max(speedups) > 1.1, "the framework should find real wins"
