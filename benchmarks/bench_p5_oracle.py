"""P5: the plan-correctness oracle as a gated benchmark.

Three properties are measured and gated:

1. **Clean run**: on unmutated code, every oracle layer -- differential
   plan equivalence (all enumerated plan shapes vs the exact count),
   metamorphic transforms, estimator contracts (including the domain
   probes and the ``estimates_version`` bump), bound soundness (the
   pessimistic estimator's certificate holds on every enumerated
   subquery and dominates the point estimate), the deep-chain
   closed-form differential and a sampled online audit of a live serving
   run -- must report **zero violations**.
2. **Mutation catch rate**: re-introducing each catalogued bug (the
   seeded mutations in :mod:`repro.oracle.mutations`, which include the
   satellite bugs this PR fixed) must be detected by at least one layer;
   the gate requires >= 90% of >= 10 mutations caught.
3. **Determinism**: two same-seed oracle passes must export byte-identical
   reports (and the audited serving run byte-identical telemetry).

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p5_oracle.py --profile quick --export out.json``)
it prints the per-layer tables and writes the deterministic export that
CI diffs across two runs.
"""

import argparse
import json
import os

import numpy as np

from repro.bench import render_table
from repro.cardest.bounds import MCVJoinBoundEstimator
from repro.cardest.querydriven import LinearQueryEstimator
from repro.engine import CardinalityExecutor
from repro.optimizer import TraditionalCardinalityEstimator
from repro.oracle import (
    EstimatorContractChecker,
    MetamorphicSuite,
    OracleReport,
    PlanEquivalenceChecker,
    Violation,
    apply_mutation,
    mutation_names,
    reference_count,
)
from repro.oracle.fixtures import make_deep_chain
from repro.serve.scenarios import steady_state_scenario
from repro.sql import WorkloadGenerator
from repro.storage.datasets import make_stats_lite

_PROFILES = {
    "quick": {
        "scale": 0.2,
        "n_queries": 8,
        "chain_tables": 8,
        "serve_queries": 32,
        "audit_every": 8,
    },
    "full": {
        "scale": 0.3,
        "n_queries": 20,
        "chain_tables": 10,
        "serve_queries": 96,
        "audit_every": 8,
    },
}
PROFILE = os.environ.get("ORACLE_PROFILE", "quick")


def _workload(db, seed: int, n: int):
    gen = WorkloadGenerator(db, seed=seed)
    return gen.workload(n, 1, 3, require_predicate=True)


def oracle_pass(seed: int = 0, profile: str | None = None) -> OracleReport:
    """One full oracle pass; all layers merged into a single report."""
    p = _PROFILES[profile or PROFILE]
    db = make_stats_lite(scale=p["scale"], seed=seed)
    queries = _workload(db, seed + 17, p["n_queries"])
    report = OracleReport()

    # Layer 1: every enumerated plan shape vs the exact count.
    equivalence = PlanEquivalenceChecker(db)
    report.extend(equivalence.check_workload(queries))
    report.record_check("plan_equivalence", equivalence.plans_checked)

    # Layer 2: result-preserving query transforms.
    metamorphic = MetamorphicSuite(db)
    report.extend(metamorphic.check_workload(queries))
    report.record_check("metamorphic", metamorphic.checks_run)

    # Layer 3: estimator contracts + domain probes + version bump.
    contracts = EstimatorContractChecker(
        db, TraditionalCardinalityEstimator(db)
    )
    report.extend(contracts.check_workload(queries))
    report.extend(contracts.check_domain_contracts())
    executor = CardinalityExecutor(db)
    cards = np.array([executor.cardinality(q) for q in queries], dtype=float)
    learned = LinearQueryEstimator(db).fit(list(queries), cards)
    learned_contracts = EstimatorContractChecker(db, learned, monotonic=False)
    report.extend(
        learned_contracts.check_version_bump(
            lambda est: est.fit(list(queries), cards), label="refit"
        )
    )
    report.record_check("contract", contracts.checks_run + 1)

    # Layer 3b: bound soundness -- the pessimistic estimator's certificate
    # (bound >= exact count on every enumerated subquery, and bound
    # dominates the point estimate it certifies).
    bounds = MCVJoinBoundEstimator(db)
    bound_contracts = EstimatorContractChecker(db, bounds)
    report.extend(bound_contracts.check_bound_soundness(queries, executor=executor))
    # 10% slack: histogram interpolation on narrow ranges overshoots the
    # (near-exact) sketch bound by a few percent; a genuine undercounting
    # bug (e.g. the bound_undercounts mutation, /8) blows well past it.
    report.extend(
        bound_contracts.check_bound_dominates(
            TraditionalCardinalityEstimator(db), queries, tolerance=1.1
        )
    )
    report.record_check("bound", bound_contracts.checks_run)

    # Layer 4a: deep-chain differential -- executor vs independent
    # reference vs the closed-form count (past float64 exactness).
    chain_db, chain_q, expected = make_deep_chain(p["chain_tables"], seed=seed)
    got = CardinalityExecutor(chain_db).cardinality(chain_q)
    if got != expected:
        report.extend(
            [
                Violation(
                    "plan_equivalence",
                    "chain_closed_form",
                    str(chain_q),
                    str(expected),
                    str(got),
                    detail="executor diverged from the closed-form count",
                )
            ]
        )
    ref = reference_count(chain_db, chain_q)
    if ref != expected:
        report.extend(
            [
                Violation(
                    "plan_equivalence",
                    "reference_closed_form",
                    str(chain_q),
                    str(expected),
                    str(ref),
                    detail="reference counter diverged from the closed form",
                )
            ]
        )
    # Domain probes against the probe table's engineered edge columns.
    chain_contracts = EstimatorContractChecker(
        chain_db, TraditionalCardinalityEstimator(chain_db)
    )
    report.extend(chain_contracts.check_domain_contracts())
    report.record_check("plan_equivalence", 2)
    report.record_check("contract", chain_contracts.checks_run)

    # Layer 4b: sampled online audit of a live serving run.
    scenario = steady_state_scenario(
        scale=p["scale"],
        seed=seed,
        n_queries=p["serve_queries"],
        n_sessions=4,
        audit_every=p["audit_every"],
    )
    scenario.run()
    report.merge(scenario.auditor.report)
    report.record_check("audit", scenario.auditor.stats()["audited"])
    return report


def test_p5_clean_run_zero_violations():
    report = oracle_pass(seed=0)
    assert report.clean, "clean code produced oracle violations:\n" + "\n".join(
        str(v) for v in report.violations
    )
    assert report.checks.get("plan_equivalence", 0) > 0
    assert report.checks.get("metamorphic", 0) > 0
    assert report.checks.get("contract", 0) > 0
    assert report.checks.get("bound", 0) > 0
    assert report.checks.get("audit", 0) > 0
    by_layer = report.by_layer()
    print(
        render_table(
            f"P5: clean oracle pass ({PROFILE})",
            ["layer", "checks", "violations"],
            [
                (layer, count, by_layer.get(layer, 0))
                for layer, count in sorted(report.checks.items())
            ],
        )
    )


def test_p5_mutation_catch_rate():
    caught, missed = [], []
    for name in mutation_names():
        try:
            with apply_mutation(name):
                report = oracle_pass(seed=0)
            detected = report.n_violations > 0
        except Exception:
            detected = True  # a loud crash under mutation is detection too
        (caught if detected else missed).append(name)
    total = len(caught) + len(missed)
    assert total >= 10, f"mutation catalogue too small ({total})"
    rate = len(caught) / total
    print(
        render_table(
            f"P5: mutation catch rate {len(caught)}/{total} ({rate:.0%})",
            ["mutation", "caught"],
            [(n, "yes") for n in caught] + [(n, "NO") for n in missed],
        )
    )
    assert rate >= 0.9, f"oracle missed mutations: {missed}"


def test_p5_determinism_same_seed_same_export():
    exports, telemetry = [], []
    for _ in range(2):
        report = oracle_pass(seed=3)
        exports.append(report.to_json())
        scenario = steady_state_scenario(
            scale=0.2, seed=3, n_queries=32, n_sessions=4, audit_every=8
        )
        scenario.run()
        telemetry.append(scenario.runtime.telemetry.to_json())
    assert exports[0] == exports[1], "same-seed oracle reports diverged"
    assert telemetry[0] == telemetry[1], (
        "same-seed audited serving runs diverged"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic oracle report (JSON) here",
    )
    args = parser.parse_args(argv)
    report = oracle_pass(seed=args.seed, profile=args.profile)
    by_layer = report.by_layer()
    print(
        render_table(
            f"P5: oracle pass ({args.profile}), seed={args.seed}",
            ["layer", "checks", "violations"],
            [
                (layer, count, by_layer.get(layer, 0))
                for layer, count in sorted(report.checks.items())
            ],
            note="zero violations expected on clean code",
        )
    )
    for v in report.violations:
        print(str(v))
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(report.to_json())
        print(f"oracle report written to {args.export}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
