"""P3: the serving stack under deterministic fault injection.

Three resilience properties are measured and gated:

1. **Availability under chaos**: a canary deployment planning through a
   faulty estimator (crashes, NaN/Inf, garbage magnitudes, stale
   statistics) with a crashing/stalling learned optimizer must still
   drain its whole schedule -- every query answered, zero unhandled
   exceptions -- because each failure is absorbed by a rung of the
   degradation ladder (fallback estimator, circuit breakers, degraded
   native serving).
2. **Fault accounting**: every injected fault must be visible in the
   telemetry bus, per fault class (``faults.injected.*``) and per target
   (``faults.target.*``), matching the injector's own counters exactly.
3. **Determinism**: two same-seed chaos runs must produce byte-identical
   telemetry exports.  Faults, breaker transitions and fallbacks are part
   of the reproducible record, not noise.

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p3_chaos.py --profile quick --export out.json``)
it prints the report tables and writes the deterministic telemetry export
CI diffs across two runs.
"""

import argparse
import os

from repro.bench import render_bounds_stats, render_fault_stats, render_table
from repro.serve import bound_guard_scenario, chaos_scenario

_PROFILES = {
    "quick": {"scale": 0.3, "n_queries": 160, "n_sessions": 8},
    "full": {"scale": 0.5, "n_queries": 400, "n_sessions": 8},
}
PROFILE = os.environ.get("CHAOS_PROFILE", "quick")


def _chaos(seed: int = 0, profile: str | None = None):
    p = _PROFILES[profile or PROFILE]
    return chaos_scenario(
        scale=p["scale"],
        seed=seed,
        n_queries=p["n_queries"],
        n_sessions=p["n_sessions"],
    )


def _fault_counters_from_bus(snapshot: dict) -> dict:
    """The per-class / per-target fault counters as the bus recorded them."""
    return {
        k: v
        for k, v in snapshot["counters"].items()
        if k.startswith("faults.")
    }


def test_p3_chaos_workload_completes():
    scenario = _chaos(seed=0)
    report = scenario.run()
    assert report.n_served == report.n_requests, "chaos run shed queries"
    assert scenario.injector.total_injected() > 0, "no faults fired"
    deployment = scenario.deployment
    # Faults really hit the serving path and were absorbed, not avoided.
    assert deployment.learned_failures + deployment.degraded_serves > 0
    snap = deployment.telemetry.snapshot()
    lat = snap["histograms"]["latency_ms"]
    print(
        render_table(
            f"P3: chaos serving ({PROFILE}), "
            f"{report.n_requests} requests",
            ["served", "faults", "learned_failures", "degraded",
             "breaker_trips", "p50_ms", "p99_ms"],
            [(
                report.n_served,
                scenario.injector.total_injected(),
                deployment.learned_failures,
                deployment.degraded_serves,
                deployment.breaker.trips,
                lat["p50"],
                lat["p99"],
            )],
        )
    )
    print(render_fault_stats(scenario.injector.stats()))


def test_p3_fault_counters_reach_telemetry():
    scenario = _chaos(seed=1)
    scenario.run()
    snap = scenario.deployment.telemetry.snapshot()
    bus_counters = _fault_counters_from_bus(snap)
    assert bus_counters, "no faults.* counters on the bus"
    # Bus accounting must match the injector's ground truth per class.
    by_kind: dict[str, int] = {}
    by_target: dict[str, int] = {}
    for key, count in scenario.injector.counters.items():
        target, kind = key.split(".", 1)
        by_kind[kind] = by_kind.get(kind, 0) + count
        by_target[target] = by_target.get(target, 0) + count
    for kind, count in by_kind.items():
        assert bus_counters[f"faults.injected.{kind}"] == count
    for target, count in by_target.items():
        assert bus_counters[f"faults.target.{target}"] == count
    print(
        render_table(
            "P3: fault classes on the telemetry bus",
            ["counter", "count"],
            sorted(bus_counters.items()),
        )
    )


def test_p3_bound_guard_absorbs_fault_storm():
    """The bound-guard rung of the ladder under its own fault storm:
    every query answered, every certificate crossing routed to fallback."""
    p = _PROFILES[PROFILE]
    scenario = bound_guard_scenario(
        scale=p["scale"], seed=0, n_queries=min(p["n_queries"], 160)
    )
    report = scenario.run()
    assert report.n_served == report.n_requests, "guarded run shed queries"
    stats = scenario.bound_guard.stats()
    assert stats["estimate_violations"] > 0, "fault storm never crossed a bound"
    assert stats["fallback_served"] > 0
    print(render_bounds_stats(stats, title="P3: bound guard under chaos"))


def test_p3_determinism_same_seed_same_export():
    exports = []
    for _ in range(2):
        scenario = _chaos(seed=3)
        scenario.run()
        exports.append(scenario.deployment.telemetry.to_json())
    assert exports[0] == exports[1], (
        "same-seed chaos runs diverged (fault injection is not deterministic)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic telemetry export (JSON) here",
    )
    args = parser.parse_args(argv)
    scenario = _chaos(seed=args.seed, profile=args.profile)
    report = scenario.run()
    deployment = scenario.deployment
    snap = deployment.telemetry.snapshot()
    lat = snap["histograms"]["latency_ms"]
    print(
        render_table(
            f"P3: chaos serving ({args.profile}), seed={args.seed}",
            ["served", "requests", "faults", "learned_failures",
             "degraded", "breaker_trips", "p50_ms", "p99_ms"],
            [(
                report.n_served,
                report.n_requests,
                scenario.injector.total_injected(),
                deployment.learned_failures,
                deployment.degraded_serves,
                deployment.breaker.trips,
                lat["p50"],
                lat["p99"],
            )],
        )
    )
    print(render_fault_stats(scenario.injector.stats()))
    guarded = bound_guard_scenario(
        scale=_PROFILES[args.profile]["scale"], seed=args.seed
    )
    guarded.run()
    print(
        render_bounds_stats(
            guarded.bound_guard.stats(), title="P3: bound guard under chaos"
        )
    )
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(deployment.telemetry.to_json())
        print(f"telemetry export written to {args.export}")
    return 0 if report.n_served == report.n_requests else 1


if __name__ == "__main__":
    raise SystemExit(main())
