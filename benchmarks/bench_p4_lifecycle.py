"""P4: the model lifecycle closing the loop -- drift, retrain, recover.

Three lifecycle properties are measured and gated:

1. **Drift recovery**: a GBDT-steered deployment serves a stream whose
   database mutates halfway (:func:`repro.bench.apply_drift`).  The
   closed loop (drift + q-error triggers -> clone -> Warper adaptation ->
   eval gate -> SHADOW deployment -> auto-promotion) must end the run
   with a *materially lower* held-out q-error than the frozen baseline
   running the identical stream with triggers disabled, at no worse p50
   served latency.
2. **Gate safety**: with impossible gate thresholds every challenger must
   be rejected -- zero ``deployment.deploys``, the champion object still
   serving -- while the rejected versions remain in the registry with
   their failing gate reports (lineage keeps the evidence).
3. **Determinism**: two same-seed runs must produce byte-identical
   registry *and* telemetry JSON exports.  Retraining is part of the
   reproducible record.

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p4_lifecycle.py --profile quick --export out.json``)
it prints the lifecycle report tables and writes the combined
registry+telemetry export the ``lifecycle-smoke`` CI job diffs across two
runs.
"""

import argparse
import json
import os

from repro.bench import render_lifecycle_stats, render_table
from repro.lifecycle import drift_recovery_scenario, lifecycle_stats

_PROFILES = {
    "quick": {"scale": 0.2, "n_queries": 160, "n_train": 80, "n_holdout": 24},
    "full": {"scale": 0.35, "n_queries": 320, "n_train": 140, "n_holdout": 40},
}
PROFILE = os.environ.get("LIFECYCLE_PROFILE", "quick")


def _scenario(seed: int = 0, profile: str | None = None, **overrides):
    p = _PROFILES[profile or PROFILE]
    kwargs = dict(
        scale=p["scale"],
        seed=seed,
        n_queries=p["n_queries"],
        n_train=p["n_train"],
        n_holdout=p["n_holdout"],
        drift_check_every=15,
        cooldown_queries=30,
    )
    kwargs.update(overrides)
    return drift_recovery_scenario(**kwargs)


def _export_blob(scenario) -> str:
    """The deterministic artifact CI diffs: registry + telemetry, sorted."""
    return json.dumps(
        {
            "registry": json.loads(scenario.registry.to_json()),
            "telemetry": json.loads(scenario.telemetry.to_json()),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _served_p50(scenario) -> float:
    return scenario.telemetry.snapshot()["histograms"]["latency_ms"]["p50"]


def test_p4_drift_recovery_beats_frozen_baseline():
    closed = _scenario(seed=0)
    closed.run()
    frozen = _scenario(seed=0, closed_loop=False)
    frozen.run()
    closed_q = closed.holdout_qerror()
    frozen_q = frozen.holdout_qerror()
    sched = closed.scheduler.stats()
    assert sched["retrains"] >= 1, "no retraining fired after the drift"
    assert sched["deploys"] >= 1, "no gated challenger reached deployment"
    assert closed.registry.champion_id != closed.registry.versions()[0].version_id, (
        "the recovered challenger never became champion"
    )
    # The headline: the closed loop recovers estimation accuracy the
    # frozen baseline permanently lost.
    assert closed_q < frozen_q * 0.75, (
        f"closed loop q-error {closed_q:.1f} did not materially beat "
        f"frozen {frozen_q:.1f}"
    )
    # ... and not by trading away serving latency.
    assert _served_p50(closed) <= _served_p50(frozen) * 1.10
    # Registered versions are immutable: serving never mutated any of them.
    assert all(
        closed.registry.verify(v.version_id) for v in closed.registry.versions()
    )
    print(
        render_table(
            f"P4: drift recovery ({PROFILE})",
            ["arm", "holdout_qerror_p90", "p50_ms", "retrains", "versions"],
            [
                ("closed_loop", round(closed_q, 2), _served_p50(closed),
                 sched["retrains"], len(closed.registry)),
                ("frozen", round(frozen_q, 2), _served_p50(frozen), 0,
                 len(frozen.registry)),
            ],
            note=f"drift at request {closed.drift_at} of {closed.n_requests}",
        )
    )
    print(render_lifecycle_stats(lifecycle_stats(closed)))


def test_p4_gate_blocks_bad_challenger():
    scenario = _scenario(seed=0)
    # Impossible thresholds: nothing may pass the gate.
    scenario.gate.max_p50_ratio = 0.0
    scenario.gate.max_p95_ratio = 0.0
    scenario.gate.max_qerror_ratio = 0.0
    champion_before = scenario.deployment.learned
    version_before = scenario.deployment.model_version
    scenario.run()
    sched = scenario.scheduler.stats()
    assert sched["retrains"] >= 1, "scenario never retrained; gate untested"
    assert sched["deploys"] == 0, "a gate-failing challenger was deployed"
    counters = scenario.telemetry.snapshot()["counters"]
    assert counters.get("deployment.deploys", 0) == 0
    assert counters.get("gate.failed", 0) == sched["retrains"]
    # The champion object is untouched and still the serving model.
    assert scenario.deployment.learned is champion_before
    assert scenario.deployment.model_version == version_before
    # Rejected challengers stay in the registry with failing gate reports.
    rejected = [
        v for v in scenario.registry.versions() if v.trigger != "initial"
    ]
    assert rejected, "rejected challengers missing from the registry"
    for v in rejected:
        report = scenario.registry.gate_report(v.version_id)
        assert report is not None and report["passed"] is False
    print(
        render_table(
            "P4: gate safety",
            ["retrains", "gate_failures", "deploys", "versions"],
            [(sched["retrains"], sched["gate_failures"], sched["deploys"],
              len(scenario.registry))],
            note="impossible gate thresholds: every challenger rejected",
        )
    )


def test_p4_determinism_same_seed_same_exports():
    exports = []
    for _ in range(2):
        scenario = _scenario(seed=3)
        scenario.run()
        exports.append(_export_blob(scenario))
    assert exports[0] == exports[1], (
        "same-seed lifecycle runs diverged (retraining is not deterministic)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic registry+telemetry export (JSON) here",
    )
    args = parser.parse_args(argv)
    closed = _scenario(seed=args.seed, profile=args.profile)
    closed.run()
    frozen = _scenario(seed=args.seed, profile=args.profile, closed_loop=False)
    frozen.run()
    closed_q = closed.holdout_qerror()
    frozen_q = frozen.holdout_qerror()
    sched = closed.scheduler.stats()
    print(
        render_table(
            f"P4: lifecycle drift recovery ({args.profile}), seed={args.seed}",
            ["arm", "holdout_qerror_p90", "p50_ms", "retrains", "deploys",
             "versions"],
            [
                ("closed_loop", round(closed_q, 2), _served_p50(closed),
                 sched["retrains"], sched["deploys"], len(closed.registry)),
                ("frozen", round(frozen_q, 2), _served_p50(frozen), 0, 0,
                 len(frozen.registry)),
            ],
            note=f"drift at request {closed.drift_at} of {closed.n_requests}",
        )
    )
    print(render_lifecycle_stats(lifecycle_stats(closed)))
    for v in closed.registry.versions():
        stages = "->".join(s["stage"] for s in closed.registry.stage_history(
            v.version_id
        ))
        print(f"  {v.version_id}  parent={v.parent or '-':>12}  "
              f"trigger={v.trigger[:40]:<40}  stages={stages or '-'}")
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(_export_blob(closed))
        print(f"lifecycle export written to {args.export}")
    return 0 if closed_q < frozen_q else 1


if __name__ == "__main__":
    raise SystemExit(main())
