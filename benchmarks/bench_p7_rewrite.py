"""P7: learned query rewriting with an oracle-validated leaderboard, gated.

Four properties are measured and gated on a rewrite-susceptible workload
(OR-heavy disjunctions, wide IN lists, pushdown-blocked join-column
predicates, redundant / mergeable range pairs -- all drawn from
``WorkloadGenerator.rewrite_susceptible_workload``):

1. **Oracle cleanliness**: every promotion on the leaderboard re-verifies
   result-identical -- exact COUNT equality against the original (union
   splits must *sum* to it), then every rewritten query through the
   :class:`~repro.oracle.equivalence.PlanEquivalenceChecker` (all
   enumerated plan shapes agree).  Zero mismatches, zero violations.
2. **Speedup**: the promoted set achieves >= 1.05x geometric-mean
   simulated speedup, and serving the whole workload through
   :class:`~repro.rewrite.RewritingOptimizer` (OptimizationLoop +
   DeploymentManager shipped SHADOW -> CANARY -> LIVE) shows no
   single-query regression worse than 0.9x.
3. **Learning**: anti-pattern feedback measurably shifts rule selection --
   after fitting the retrieval store on phase-one outcomes, a fresh
   leaderboard over the same workload attempts fewer down-weighted rules
   than cold start (``skipped_by_weight > 0`` and a different candidate
   mix).
4. **Determinism**: two same-seed runs export byte-identical leaderboard
   snapshots and telemetry.

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p7_rewrite.py --profile quick --export out.json``)
it prints the promotion-funnel tables and writes the deterministic export
(leaderboard snapshot, store examples, telemetry -- virtual latencies
only, no wall-clock) that CI diffs across runs.
"""

import argparse
import json
import os
from collections import Counter

from repro.bench import render_rewrite_stats, render_table
from repro.e2e.loop import OptimizationLoop
from repro.engine.simulator import ExecutionSimulator
from repro.oracle.equivalence import PlanEquivalenceChecker
from repro.rewrite import (
    GoldExampleStore,
    PromotionLeaderboard,
    RewritingOptimizer,
)
from repro.serve.deployment import DeploymentManager
from repro.serve.telemetry import TelemetryBus
from repro.sql import WorkloadGenerator
from repro.storage.datasets import make_stats_lite

_PROFILES = {
    "quick": {"scale": 0.15, "n_queries": 30, "n_clusters": 4},
    "full": {"scale": 0.3, "n_queries": 60, "n_clusters": 6},
}
PROFILE = os.environ.get("REWRITE_PROFILE", "quick")
GEOMEAN_GATE = 1.05
REGRESSION_FLOOR = 0.9


def _profile(profile: str | None) -> dict:
    return _PROFILES[profile or PROFILE]


# -- measured passes --------------------------------------------------------------


def leaderboard_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Build the workload, run the full candidate/validate/promote pipeline.

    The workload is generated *before* any submission: IN -> join attaches
    values relations to the live database, and the generator reads the
    live table list.
    """
    p = _profile(profile)
    db = make_stats_lite(scale=p["scale"], seed=seed)
    workload = WorkloadGenerator(db, seed=seed + 11).rewrite_susceptible_workload(
        p["n_queries"]
    )
    telemetry = TelemetryBus()
    store = GoldExampleStore(db, n_clusters=p["n_clusters"], seed=seed)
    leaderboard = PromotionLeaderboard(db, store=store, telemetry=telemetry)
    leaderboard.submit_workload(workload)
    return {
        "db": db,
        "workload": workload,
        "leaderboard": leaderboard,
        "store": store,
        "telemetry": telemetry,
    }


def oracle_pass(ctx: dict) -> dict:
    """Re-verify every promotion: exact counts, then all plan shapes."""
    leaderboard = ctx["leaderboard"]
    checker = PlanEquivalenceChecker(
        ctx["db"], leaderboard.optimizer, check_reference=False
    )
    recount_mismatches = 0
    plan_violations = 0
    checked = 0
    for candidate, _entry in leaderboard.promotions:
        checked += 1
        result = leaderboard.validator.validate(candidate)
        if result.mismatch:
            recount_mismatches += 1
        plan_violations += len(
            leaderboard.validator.deep_check(candidate, checker)
        )
    return {
        "promotions_checked": checked,
        "recount_mismatches": recount_mismatches,
        "plan_violations": plan_violations,
        "plans_checked": checker.plans_checked,
    }


def serving_pass(ctx: dict) -> dict:
    """Ship the rewrites: OptimizationLoop per-query regression floor,
    then SHADOW -> CANARY -> LIVE through a DeploymentManager."""
    db, leaderboard = ctx["db"], ctx["leaderboard"]
    rewriter = RewritingOptimizer(leaderboard)
    loop = OptimizationLoop(
        rewriter,
        ExecutionSimulator(db, executor=leaderboard.executor),
        leaderboard.optimizer,
    )
    results = [loop.run_query(q) for q in ctx["workload"]]
    speedups = sorted(round(r.speedup, 6) for r in results)

    deployment = DeploymentManager(
        RewritingOptimizer(leaderboard),
        leaderboard.optimizer,
        ExecutionSimulator(db, executor=leaderboard.executor),
        telemetry=ctx["telemetry"],
        name="rewrite",
    )
    shadow = [deployment.serve(q) for q in ctx["workload"]]
    assert not any(d.served_learned for d in shadow)  # SHADOW serves native
    deployment.promote()  # -> CANARY
    deployment.promote()  # -> LIVE
    live = [deployment.serve(q) for q in ctx["workload"]]
    live_rewrites = sum(
        1 for d in live if d.plan_source.startswith("rewrite:")
    )
    return {
        "speedups": speedups,
        "min_speedup": min(speedups),
        "rewrites_served_loop": rewriter.rewrites_served,
        "live_rewrites": live_rewrites,
        "final_stage": deployment.stage.value,
    }


def feedback_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Cold-start vs post-feedback rule selection on the same workload."""
    ctx = leaderboard_pass(seed=seed, profile=profile)
    cold = ctx["leaderboard"]
    mix_cold = Counter(e.rule for e in cold.entries)
    ctx["store"].fit()
    warm = PromotionLeaderboard(ctx["db"], store=ctx["store"])
    warm.submit_workload(ctx["workload"])
    mix_warm = Counter(e.rule for e in warm.entries)
    return {
        "mix_cold": dict(sorted(mix_cold.items())),
        "mix_warm": dict(sorted(mix_warm.items())),
        "skipped_by_weight": warm.counters["skipped_by_weight"],
        "demoted_cold": cold.counters["demoted"],
        "demoted_warm": warm.counters["demoted"],
    }


def full_run(seed: int = 0, profile: str | None = None) -> dict:
    """Everything the determinism gate compares across two processes."""
    ctx = leaderboard_pass(seed=seed, profile=profile)
    oracle = oracle_pass(ctx)
    serving = serving_pass(ctx)
    return {
        "ctx": ctx,
        "oracle": oracle,
        "serving": serving,
        "leaderboard_json": ctx["leaderboard"].to_json(),
        "store_export": ctx["store"].export(),
        "telemetry_json": ctx["telemetry"].to_json(),
    }


# -- gates (pytest-collectable) -----------------------------------------------------


def test_p7_promoted_rewrites_oracle_clean():
    ctx = leaderboard_pass(seed=0)
    oracle = oracle_pass(ctx)
    stats = ctx["leaderboard"].stats()
    print(
        render_rewrite_stats(
            stats,
            title=f"P7: promotion funnel ({PROFILE})",
            note=f"{oracle['plans_checked']} plan shapes re-executed over "
            f"{oracle['promotions_checked']} promotions",
        )
    )
    assert oracle["promotions_checked"] > 0, "nothing promoted"
    assert stats["mismatches"] == 0, "validation let a wrong rewrite through"
    assert oracle["recount_mismatches"] == 0, "promoted rewrite changed results"
    assert oracle["plan_violations"] == 0, "a rewritten plan shape diverged"


def test_p7_speedup_gates():
    ctx = leaderboard_pass(seed=0)
    leaderboard = ctx["leaderboard"]
    serving = serving_pass(ctx)
    geomean = leaderboard.geomean_promoted()
    print(
        render_table(
            f"P7: shipping gate ({PROFILE})",
            ["geomean", "min_speedup", "loop_rewrites", "live_rewrites", "stage"],
            [(
                f"{geomean:.3f}x",
                f"{serving['min_speedup']:.3f}x",
                serving["rewrites_served_loop"],
                serving["live_rewrites"],
                serving["final_stage"],
            )],
            note=f"gates: geomean >= {GEOMEAN_GATE}x, "
            f"min per-query >= {REGRESSION_FLOOR}x",
        )
    )
    assert leaderboard.counters["promoted"] > 0
    assert geomean >= GEOMEAN_GATE, f"geomean {geomean:.3f}x below gate"
    assert serving["min_speedup"] >= REGRESSION_FLOOR, (
        f"a query regressed to {serving['min_speedup']:.3f}x on the way to LIVE"
    )
    assert serving["live_rewrites"] > 0, "LIVE never served a rewrite"
    assert serving["final_stage"] == "live"


def test_p7_antipattern_feedback_shifts_selection():
    result = feedback_pass(seed=0)
    rows = [
        (rule, result["mix_cold"].get(rule, 0), result["mix_warm"].get(rule, 0))
        for rule in sorted(set(result["mix_cold"]) | set(result["mix_warm"]))
    ]
    print(
        render_table(
            f"P7: rule selection, cold vs post-feedback ({PROFILE})",
            ["rule", "cold candidates", "warm candidates"],
            rows,
            note=f"{result['skipped_by_weight']} attempts suppressed by "
            "anti-pattern weights",
        )
    )
    assert result["skipped_by_weight"] > 0, "feedback never suppressed a rule"
    assert result["mix_warm"] != result["mix_cold"], (
        "post-feedback candidate mix identical to cold start"
    )
    assert result["demoted_warm"] <= result["demoted_cold"], (
        "feedback increased demotions"
    )


def test_p7_determinism_same_seed_exports():
    a = full_run(seed=3)
    b = full_run(seed=3)
    assert a["leaderboard_json"] == b["leaderboard_json"], (
        "same-seed leaderboard snapshots diverged"
    )
    assert a["telemetry_json"] == b["telemetry_json"], (
        "same-seed telemetry exports diverged"
    )
    assert a["store_export"] == b["store_export"]


# -- script entry point -------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic export (leaderboard snapshot, store "
        "examples, telemetry; virtual latencies only) here",
    )
    args = parser.parse_args(argv)

    run = full_run(seed=args.seed, profile=args.profile)
    feedback = feedback_pass(seed=args.seed, profile=args.profile)
    leaderboard = run["ctx"]["leaderboard"]
    stats = leaderboard.stats()

    print(
        render_rewrite_stats(
            stats,
            title=f"P7: promotion funnel ({args.profile}), seed={args.seed}",
            note=f"oracle: {run['oracle']['recount_mismatches']} recount "
            f"mismatches, {run['oracle']['plan_violations']} plan violations "
            f"over {run['oracle']['plans_checked']} plan shapes",
        )
    )
    per_rule = Counter((e.rule, e.status) for e in leaderboard.entries)
    print(
        render_table(
            "P7: per-rule outcomes",
            ["rule", "status", "count"],
            [(r, s, c) for (r, s), c in sorted(per_rule.items())],
        )
    )
    print(
        render_table(
            "P7: shipping",
            ["geomean", "min_speedup", "live_rewrites", "stage"],
            [(
                f"{leaderboard.geomean_promoted():.3f}x",
                f"{run['serving']['min_speedup']:.3f}x",
                run["serving"]["live_rewrites"],
                run["serving"]["final_stage"],
            )],
            note=f"gates: geomean >= {GEOMEAN_GATE}x, "
            f"min >= {REGRESSION_FLOOR}x",
        )
    )

    ok = (
        run["oracle"]["promotions_checked"] > 0
        and stats["mismatches"] == 0
        and run["oracle"]["recount_mismatches"] == 0
        and run["oracle"]["plan_violations"] == 0
        and leaderboard.geomean_promoted() >= GEOMEAN_GATE
        and run["serving"]["min_speedup"] >= REGRESSION_FLOOR
        and run["serving"]["live_rewrites"] > 0
        and feedback["skipped_by_weight"] > 0
        and feedback["mix_warm"] != feedback["mix_cold"]
    )

    if args.export:
        # Deterministic content only: virtual latencies, no wall-clock.
        export = {
            "profile": args.profile,
            "seed": args.seed,
            "leaderboard": json.loads(run["leaderboard_json"]),
            "store": run["store_export"],
            "oracle": run["oracle"],
            "serving": run["serving"],
            "feedback": feedback,
            "telemetry": json.loads(run["telemetry_json"]),
        }
        with open(args.export, "w") as fh:
            json.dump(export, fh, indent=2, sort_keys=True, default=str)
            fh.write("\n")
        print(f"rewrite report written to {args.export}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
