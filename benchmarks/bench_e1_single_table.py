"""E1: single-table estimator accuracy on static data ([61]-style).

"Are we ready for learned cardinality estimation?" -- compares the
traditional baselines against query-driven and data-driven learned
estimators on single-table range workloads, reporting the q-error
quantiles those studies report plus build and inference costs.

Expected shape (from [61]/[53]): data-driven models (Naru/SPN/FSPN/BN)
dominate on single tables; query-driven models sit between them and the
histogram; sampling has good medians but heavy tails.
"""

import time

import numpy as np

from repro.bench import build_estimator, render_table
from repro.bench.suite import estimate_workload, fit_estimator
from repro.cardest.base import q_error_summary
from repro.sql import WorkloadGenerator

METHODS = [
    "histogram",
    "sampling",
    "linear",
    "gbdt",
    "mlp",
    "mscn",
    "quicksel",
    "kde",
    "naru",
    "bayesnet",
    "spn",
    "fspn",
]


def test_e1_single_table_accuracy(benchmark, stats_db, stats_executor):
    tables = ["posts", "users"]
    train_gen = WorkloadGenerator(stats_db, seed=1)
    test_gen = WorkloadGenerator(stats_db, seed=97)
    train_q = [
        q for t in tables for q in train_gen.single_table_workload(t, 200)
    ]
    train_c = np.array([stats_executor.cardinality(q) for q in train_q])
    test_q = [q for t in tables for q in test_gen.single_table_workload(t, 100)]
    test_c = np.array([stats_executor.cardinality(q) for q in test_q])

    def run():
        rows = []
        summaries = {}
        for name in METHODS:
            est = build_estimator(name, stats_db, budget="full")
            build_s = fit_estimator(est, train_q, train_c)
            t0 = time.perf_counter()
            preds = estimate_workload(est, test_q)
            infer_ms = (time.perf_counter() - t0) / len(test_q) * 1000
            s = q_error_summary(preds, test_c)
            summaries[name] = s
            rows.append(
                (name, s["p50"], s["p90"], s["p99"], s["max"], s["gmq"],
                 build_s, infer_ms)
            )
        return rows, summaries

    rows, summaries = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E1: single-table q-error, static data (stats_lite, 200 test queries)",
            ["method", "p50", "p90", "p99", "max", "gmq", "build_s", "infer_ms"],
            rows,
            note="shape check: data-driven (naru/bayesnet/spn/fspn) beat the histogram",
        )
    )
    hist_gmq = summaries["histogram"]["gmq"]
    best_data_driven = min(
        summaries[m]["gmq"] for m in ("naru", "bayesnet", "spn", "fspn")
    )
    assert best_data_driven <= hist_gmq * 1.05
    for name, s in summaries.items():
        assert s["p50"] < 100, f"{name} is pathologically inaccurate"
