"""E2: estimator accuracy under data drift ([61]'s dynamic setting).

After appending 25% distribution-shifted rows to every table, each
estimator is evaluated three ways: built on the old data and left *stale*,
*refreshed* (data-driven models rebuild / query-driven models refit on
fresh feedback), and Robust-MSCN's masked-inference path which needs no
update at all.

Expected shape: stale errors blow up (most for query-driven models whose
training queries described the old data); refresh restores accuracy;
Robust-MSCN degrades the least without any update.
"""

import numpy as np

from repro.bench import apply_drift, estimate_workload, render_table
from repro.cardest import (
    BayesNetEstimator,
    FSPNEstimator,
    GBDTQueryEstimator,
    HistogramEstimator,
    MSCNEstimator,
    RobustMSCNEstimator,
    SPNEstimator,
    Warper,
)
from repro.cardest.base import q_error_summary
from repro.engine import CardinalityExecutor
from repro.optimizer import DatabaseStats
from repro.sql import WorkloadGenerator
from repro.storage import make_stats_lite


def test_e2_drift(benchmark):
    def run():
        db = make_stats_lite(scale=0.6, seed=0)
        executor = CardinalityExecutor(db)
        train_gen = WorkloadGenerator(db, seed=1)
        train_q = train_gen.workload(350, 1, 3, require_predicate=True)
        train_c = np.array([executor.cardinality(q) for q in train_q])

        stale_stats = DatabaseStats.build(db)
        methods = {
            "histogram": HistogramEstimator(db, stale_stats),
            "mscn": MSCNEstimator(db, epochs=60).fit(train_q, train_c),
            "robust_mscn": RobustMSCNEstimator(db, epochs=60).fit(train_q, train_c),
            "bayesnet": BayesNetEstimator(db),
            "spn": SPNEstimator(db),
            "fspn": FSPNEstimator(db),
        }

        apply_drift(db, fraction=0.25, seed=5)
        executor.clear_cache()
        test_gen = WorkloadGenerator(db, seed=97)
        test_q = test_gen.workload(120, 1, 3, require_predicate=True)
        test_c = np.array([executor.cardinality(q) for q in test_q])

        rows = []
        results = {}
        for name, est in methods.items():
            stale = q_error_summary(estimate_workload(est, test_q), test_c)
            # Refresh: rebuild data-driven models; refit supervised models
            # on post-drift feedback; re-ANALYZE the histogram.
            if hasattr(est, "refresh"):
                est.refresh()
            elif name == "histogram":
                est = HistogramEstimator(db, DatabaseStats.build(db))
            else:
                fresh_gen = WorkloadGenerator(db, seed=11)
                fresh_q = fresh_gen.workload(350, 1, 3, require_predicate=True)
                fresh_c = np.array([executor.cardinality(q) for q in fresh_q])
                est.fit(fresh_q, fresh_c)
            fresh = q_error_summary(estimate_workload(est, test_q), test_c)
            results[name] = (stale, fresh)
            rows.append(
                (name, stale["gmq"], stale["p90"], fresh["gmq"], fresh["p90"])
            )
        # Robust-MSCN's no-update masked path.
        masked_est = methods["robust_mscn"]
        masked = q_error_summary(
            np.array([masked_est.estimate_masked(q) for q in test_q]), test_c
        )
        rows.append(("robust_mscn(masked)", masked["gmq"], masked["p90"], "-", "-"))

        # Warper [29]: automatic drift-triggered adaptation of a supervised
        # estimator via targeted query regeneration (detector included).
        # Snapshot semantics: build on pre-drift data would be ideal, but
        # the drift already happened above; emulate by snapshotting a fresh
        # detector on a clean replica, then pointing it at the drifted db.
        from repro.storage import make_stats_lite as _mk

        clean = _mk(scale=0.6, seed=0)
        gbdt = GBDTQueryEstimator(clean)
        warper = Warper(clean, gbdt, seed=0)
        clean_gen = WorkloadGenerator(clean, seed=1)
        clean_q = clean_gen.workload(250, 1, 3, require_predicate=True)
        clean_exec = CardinalityExecutor(clean)
        warper.fit_initial(
            clean_q, np.array([clean_exec.cardinality(q) for q in clean_q])
        )
        apply_drift(clean, fraction=0.25, seed=5)
        clean_exec.clear_cache()
        c_test = WorkloadGenerator(clean, seed=97).workload(
            120, 1, 3, require_predicate=True
        )
        c_truth = np.array([clean_exec.cardinality(q) for q in c_test])
        stale_w = q_error_summary(
            estimate_workload(gbdt, c_test), c_truth
        )
        warper.adapt()
        fresh_w = q_error_summary(
            estimate_workload(gbdt, c_test), c_truth
        )
        results["warper(gbdt)"] = (stale_w, fresh_w)
        rows.append(
            ("warper(gbdt) [29]", stale_w["gmq"], stale_w["p90"],
             fresh_w["gmq"], fresh_w["p90"])
        )
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E2: q-error under 25% shifted inserts (stale vs refreshed)",
            ["method", "stale_gmq", "stale_p90", "fresh_gmq", "fresh_p90"],
            rows,
            note="refresh restores accuracy; staleness costs most where models memorized old data",
        )
    )
    improved = sum(
        1 for stale, fresh in results.values() if fresh["gmq"] <= stale["gmq"] * 1.05
    )
    assert improved >= len(results) - 1, "refresh should (almost) never hurt"
