"""P2: the serving runtime -- sustained throughput, tail latency, determinism.

Three serving properties are measured and gated:

1. **Steady state**: a canary deployment (Bao staged at 50% traffic) under
   8 concurrent sessions must drain its whole schedule -- every request
   either served or shed with a typed reason -- and the report prints
   sustained queries/sec (simulated and wall) with p50/p95/p99 latency
   from the telemetry histograms, plus the planner cardinality-cache
   counters.
2. **Determinism**: two runs with the same seed and config must produce
   *byte-identical* telemetry snapshots (JSON compared as strings).  This
   is the contract that makes serving experiments reproducible at all;
   any divergence fails the benchmark.
3. **Lifecycle under fire**: the injected-regression scenario must end
   rolled back, with the rollback visible as a telemetry event.

Profiles: ``SERVING_PROFILE=quick`` (default; CI smoke, well under 60 s)
or ``full`` (larger database and workload for stable shapes).
"""

import os

from repro.bench import render_cache_stats, render_table
from repro.serve import (
    RuntimeConfig,
    injected_regression_scenario,
    steady_state_scenario,
)

_FULL = os.environ.get("SERVING_PROFILE", "quick") == "full"
SCALE = 0.5 if _FULL else 0.3
N_QUERIES = 400 if _FULL else 160
N_SESSIONS = 8


def _steady(seed: int = 0):
    return steady_state_scenario(
        scale=SCALE,
        seed=seed,
        n_queries=N_QUERIES,
        n_sessions=N_SESSIONS,
        config=RuntimeConfig(timeout_ms=None, queue_capacity=None),
    )


def test_p2_steady_state_throughput(benchmark):
    scenario = _steady()

    def run():
        return scenario.run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_served + sum(report.rejected.values()) == report.n_requests
    assert report.n_served == report.n_requests  # no shedding when healthy
    snap = scenario.deployment.telemetry.snapshot()
    lat = snap["histograms"]["latency_ms"]
    print(
        render_table(
            f"P2: steady-state serving, {N_SESSIONS} sessions x "
            f"{report.n_requests} requests",
            [
                "served",
                "sim_qps",
                "wall_qps",
                "p50_ms",
                "p95_ms",
                "p99_ms",
                "max_ms",
            ],
            [(
                report.n_served,
                report.simulated_qps,
                report.wall_qps,
                lat["p50"],
                lat["p95"],
                lat["p99"],
                lat["max"],
            )],
        )
    )
    print(render_cache_stats(snap["gauges"]["cardinality_cache"]))
    assert lat["count"] == report.n_served
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]


def test_p2_determinism_same_seed_same_snapshot():
    """Byte-identical telemetry across two same-seed concurrent runs."""
    first = _steady(seed=3)
    first.run()
    second = _steady(seed=3)
    second.run()
    a = first.deployment.telemetry.to_json()
    b = second.deployment.telemetry.to_json()
    assert a == b, "same-seed serving runs diverged (determinism broken)"


def test_p2_admission_control_sheds_deterministically():
    tight = RuntimeConfig(timeout_ms=10.0, queue_capacity=2, max_in_flight=4)
    runs = []
    for _ in range(2):
        scenario = steady_state_scenario(
            scale=SCALE,
            seed=5,
            n_queries=N_QUERIES // 2,
            n_sessions=N_SESSIONS,
            config=tight,
        )
        report = scenario.run()
        runs.append((report.rejected, scenario.deployment.telemetry.to_json()))
    (rej_a, snap_a), (rej_b, snap_b) = runs
    assert rej_a == rej_b and snap_a == snap_b
    print(
        render_table(
            "P2: admission control under a tight config",
            ["reason", "shed"],
            sorted(rej_a.items()) or [("(none)", 0)],
        )
    )


def test_p2_injected_regression_rolls_back():
    scenario = injected_regression_scenario(
        scale=SCALE, seed=0, n_queries=120, n_sessions=N_SESSIONS
    )
    scenario.run()
    assert scenario.deployment.stage.value == "rolled_back"
    events = scenario.deployment.telemetry.events("stage_transition")
    rollbacks = [e for e in events if e["to_stage"] == "rolled_back"]
    assert rollbacks and "regression_window" in rollbacks[0]["reason"]
    print(
        render_table(
            "P2: injected regression lifecycle",
            ["from", "to", "reason", "at_query"],
            [
                (e["from_stage"], e["to_stage"], e["reason"], e["at_query"])
                for e in events
            ],
        )
    )
