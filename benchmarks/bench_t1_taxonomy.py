"""T1: regenerate the paper's Table 1 (learned cardinality estimators).

The only numbered exhibit in the tutorial is its taxonomy table.  This
bench renders it back from the implemented-method registry, proving every
listed family has a working implementation in this repository (rows whose
class fails to import would abort the run).
"""

from repro.bench import render_table
from repro.core import registry
from repro.core.registry import cardinality_estimator_rows


def test_t1_taxonomy_table(benchmark):
    def regenerate():
        rows = []
        for m in registry("cardinality"):
            cls = m.resolve()  # every row must be backed by real code
            rows.append((m.category, m.method, m.technique, m.paper_ref, cls.__name__))
        return rows

    rows = benchmark.pedantic(regenerate, rounds=3, iterations=1)
    print(
        render_table(
            "T1 / paper Table 1: learned cardinality estimators (regenerated)",
            ["Category", "Method", "Applied ML Technique", "Ref", "Implementation"],
            rows,
        )
    )
    # The paper's three top-level classes are all populated.
    categories = {r[0] for r in rows}
    assert any(c.startswith("Query-Driven") for c in categories)
    assert any(c.startswith("Data-Driven") for c in categories)
    assert any(c.startswith("Hybrid") for c in categories)
    assert len(rows) >= 18

    other = render_table(
        "T1b: remaining surveyed components (cost models, join order, end-to-end, regression)",
        ["Component", "Method", "Technique", "Ref", "Implementation"],
        [
            (m.component, m.method, m.technique, m.paper_ref, m.resolve().__name__)
            for m in registry()
            if m.component != "cardinality"
        ],
    )
    print(other)
