"""E13: zero-shot cost-model transfer across schemas (Hilprecht & Binnig [16]).

The zero-shot claim is "out-of-the-box learned cost prediction" on unseen
databases.  This bench trains the transferable model on executed plans
from three schemas (imdb_lite, stats_lite, tpch_lite) and predicts plan
latencies on the fourth, never-seen one (ssb_lite), in a leave-one-out
rotation.  Baseline: the same architecture trained on the *target*
database only (the non-transfer upper reference) and a single-source
model (how much the multi-database pooling buys).

Expected shape: multi-source zero-shot clearly beats chance and approaches
the in-database model's rank correlation; pooling more source databases
helps (the paper's core result).
"""

import numpy as np
from scipy.stats import spearmanr

from repro.bench import render_table
from repro.costmodel import PlanFeaturizer, ZeroShotCostModel
from repro.engine import ExecutionSimulator
from repro.optimizer import HintSet, Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import make_imdb_lite, make_ssb_lite, make_stats_lite, make_tpch_lite


def _corpus(db, n_queries=40, seed=5):
    opt = Optimizer(db)
    sim = ExecutionSimulator(db)
    feat = PlanFeaturizer(db, opt.estimator)
    gen = WorkloadGenerator(db, seed=seed)
    plans, lats = [], []
    for q in gen.workload(n_queries, 2, 4, require_predicate=True):
        for arm in HintSet.bao_arms()[:4]:
            p = opt.plan(q, hints=arm)
            plans.append(p)
            lats.append(sim.execute(p).latency_ms)
    return feat, plans, np.array(lats)


def test_e13_zeroshot_transfer(benchmark):
    databases = {
        "imdb": make_imdb_lite(0.5, seed=0),
        "stats": make_stats_lite(0.5, seed=0),
        "tpch": make_tpch_lite(0.5, seed=0),
        "ssb": make_ssb_lite(0.5, seed=0),
    }

    def run():
        corpora = {name: _corpus(db) for name, db in databases.items()}
        target = "ssb"
        tgt_feat, tgt_plans, tgt_lats = corpora[target]
        n_test = len(tgt_plans) // 2
        rows = []
        rhos = {}

        def evaluate(name, model):
            preds = np.array(
                [model.predict_latency(p, tgt_feat) for p in tgt_plans[:n_test]]
            )
            rho = float(spearmanr(preds, tgt_lats[:n_test]).statistic)
            rhos[name] = rho
            rows.append((name, rho))

        sources = [k for k in corpora if k != target]
        # Single-source transfer.
        single = ZeroShotCostModel(epochs=50, seed=0)
        feat, plans, lats = corpora[sources[0]]
        single.fit([(feat, list(plans), lats)])
        evaluate(f"zero-shot ({sources[0]} only)", single)
        # Multi-source transfer (the paper's setting).
        multi = ZeroShotCostModel(epochs=50, seed=0)
        multi.fit([(corpora[s][0], list(corpora[s][1]), corpora[s][2]) for s in sources])
        evaluate("zero-shot (3 schemas pooled)", multi)
        # In-database reference: trained on the target's other half.
        ref = ZeroShotCostModel(epochs=50, seed=0)
        ref.fit([(tgt_feat, list(tgt_plans[n_test:]), tgt_lats[n_test:])])
        evaluate("in-database reference", ref)
        return rows, rhos

    rows, rhos = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E13: zero-shot latency ranking on the never-seen ssb_lite schema",
            ["model", "spearman_rho"],
            rows,
            note="trained purely on other schemas' executed plans (transferable features)",
        )
    )
    # The transfer shape: pooling multiple source schemas beats a single
    # source, and zero-shot ranking is far better than chance on a schema
    # the model never saw.  (At this corpus size the pooled zero-shot model
    # can even beat the small in-database reference -- more total training
    # plans win; an honest deviation recorded in EXPERIMENTS.md.)
    single_key = [k for k in rhos if k.startswith("zero-shot (") and "only" in k][0]
    assert rhos["zero-shot (3 schemas pooled)"] >= rhos[single_key] - 0.05
    assert rhos["zero-shot (3 schemas pooled)"] > 0.35
    assert rhos["in-database reference"] > 0.3
