"""P10: cross-schema zero-shot transfer, then the fleet that serves it.

Three properties are measured and gated:

1. **Zero-shot transfer**: a :class:`ZeroShotCostModel` trained on
   executed plans from K *generated* source schemas must predict plan
   latencies on held-out target schemas it never saw -- with a geomean
   q-error at least 2x better than a random predictor drawing
   log-uniformly over the target's observed latency range, and within
   3x of the train-on-target ceiling (the same architecture trained on
   the target's own plans).
2. **Fleet drift recovery**: the lifecycle closed loop, run concurrently
   across >= 8 generated schemas (one tenant per schema pinned to its
   own shard of the P9 fabric), must detect the mid-stream fleet-wide
   drift and recover: retraining fires on nearly every schema, and the
   closed fleet's post-drift holdout q-error geomean beats the frozen
   (no-trigger) control fleet's.
3. **Determinism**: two fresh same-seed fleets export byte-identical
   merged telemetry and identical schema fingerprints.

Profiles: ``quick`` (CI smoke: 8 schemas, 6-source/2-target split) or
``full`` (12 schemas, 9/3); as a script
(``python benchmarks/bench_p10_transfer.py --profile quick --export out.json``)
it prints the gate tables and writes the deterministic export CI diffs
across two runs.
"""

import argparse
import json
import os

import numpy as np
from scipy.stats import spearmanr

from repro.bench import render_table
from repro.costmodel import PlanFeaturizer, ZeroShotCostModel
from repro.engine import ExecutionSimulator
from repro.lifecycle import transfer_fleet_scenario
from repro.optimizer import HintSet, Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import SchemaGenConfig, schema_family

_PROFILES = {
    "quick": {
        "n_schemas": 8,
        "n_sources": 6,
        "n_queries": 30,
        "fleet_schemas": 8,
        "fleet_queries": 36,
    },
    "full": {
        "n_schemas": 12,
        "n_sources": 9,
        "n_queries": 40,
        "fleet_schemas": 10,
        "fleet_queries": 48,
    },
}
PROFILE = os.environ.get("TRANSFER_PROFILE", "quick")
#: gate 1a: random-baseline geomean q-error must exceed zero-shot's by this factor
_MIN_RANDOM_ADVANTAGE = 2.0
#: gate 1b: zero-shot geomean q-error within this factor of the ceiling's
_MAX_CEILING_GAP = 3.0
#: the transfer corpus' schema shape (shared by every profile)
_TRANSFER_CONFIG = SchemaGenConfig(
    n_tables=(4, 7), rows=(200, 1000), attr_cols=(1, 2)
)


def _profile(profile: str | None) -> dict:
    return _PROFILES[profile or PROFILE]


def _corpus(db, n_queries: int, seed: int = 5):
    """Executed (plan, latency) pairs for one schema: every query is
    planned under the first four Bao hint arms so latencies spread."""
    opt = Optimizer(db)
    sim = ExecutionSimulator(db)
    feat = PlanFeaturizer(db, opt.estimator)
    gen = WorkloadGenerator(db, seed=seed)
    cap = min(4, gen.max_component_size)
    plans, lats = [], []
    for q in gen.workload(n_queries, 1, cap, require_predicate=True):
        for arm in HintSet.bao_arms()[:4]:
            p = opt.plan(q, hints=arm)
            plans.append(p)
            lats.append(sim.execute(p).latency_ms)
    return feat, plans, np.array(lats)


def _geomean_qerror(preds, actual) -> float:
    preds = np.maximum(np.asarray(preds, dtype=float), 1e-6)
    actual = np.maximum(np.asarray(actual, dtype=float), 1e-6)
    q = np.maximum(preds / actual, actual / preds)
    return float(np.exp(np.mean(np.log(q))))


def _geomean(values) -> float:
    return float(np.exp(np.mean(np.log(np.asarray(list(values), dtype=float)))))


def transfer_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 1: zero-shot q-error on held-out schemas vs random/ceiling.

    Protocol: generate one schema family, split it into source and
    target schemas, train the zero-shot model on every source corpus
    pooled, then score each target's *test half*.  Three predictors per
    target: the zero-shot model (never saw the target), the
    train-on-target **ceiling** (same architecture trained on the
    target's other half), and the **random baseline** (log-uniform draw
    over the test half's observed latency range; the permutation
    baseline -- predicting a random other plan's latency -- is reported
    as an ungated reference).
    """
    p = _profile(profile)
    dbs = schema_family(p["n_schemas"], seed=seed, config=_TRANSFER_CONFIG)
    corpora = [_corpus(db, p["n_queries"], seed=5) for db in dbs]
    sources = corpora[: p["n_sources"]]
    targets = corpora[p["n_sources"] :]

    model = ZeroShotCostModel(epochs=80, seed=seed)
    model.fit([(f, list(plans), lats) for f, plans, lats in sources])

    rng = np.random.default_rng((int(seed), 0xBA5E))
    per_target = []
    for ti, (feat, plans, lats) in enumerate(targets):
        n_test = len(plans) // 2
        test_plans, test_lats = plans[:n_test], lats[:n_test]
        zs_preds = [model.predict_latency(pl, feat) for pl in test_plans]
        zs_q = _geomean_qerror(zs_preds, test_lats)
        zs_rho = float(spearmanr(zs_preds, test_lats).statistic)
        lo = np.log(max(float(test_lats.min()), 1e-6))
        hi = np.log(float(test_lats.max()))
        random_q = _geomean_qerror(
            np.exp(rng.uniform(lo, hi, size=n_test)), test_lats
        )
        perm_q = _geomean_qerror(
            test_lats[rng.permutation(n_test)], test_lats
        )
        ceiling = ZeroShotCostModel(epochs=80, seed=seed)
        ceiling.fit([(feat, list(plans[n_test:]), lats[n_test:])])
        ceil_q = _geomean_qerror(
            [ceiling.predict_latency(pl, feat) for pl in test_plans], test_lats
        )
        per_target.append(
            {
                "schema": feat.db.name,
                "n_test_plans": n_test,
                "zeroshot_qerror": round(zs_q, 4),
                "zeroshot_rank_rho": round(zs_rho, 4),
                "random_qerror": round(random_q, 4),
                "permutation_qerror": round(perm_q, 4),
                "ceiling_qerror": round(ceil_q, 4),
            }
        )
    zs = _geomean(t["zeroshot_qerror"] for t in per_target)
    rand = _geomean(t["random_qerror"] for t in per_target)
    ceil = _geomean(t["ceiling_qerror"] for t in per_target)
    return {
        "n_schemas": p["n_schemas"],
        "n_sources": p["n_sources"],
        "n_targets": len(targets),
        "targets": per_target,
        "zeroshot_geomean": round(zs, 4),
        "zeroshot_rank_rho_mean": round(
            float(np.mean([t["zeroshot_rank_rho"] for t in per_target])), 4
        ),
        "random_geomean": round(rand, 4),
        "ceiling_geomean": round(ceil, 4),
        "random_advantage": round(rand / zs, 4),
        "ceiling_gap": round(zs / ceil, 4),
    }


def _fleet_summary(fleet) -> dict:
    stats = fleet.retrain_stats()
    qerrs = fleet.holdout_qerrors()
    served = sum(r.n_served for r in fleet.reports)
    return {
        "n_schemas": len(fleet.tenants),
        "n_requests": fleet.n_requests,
        "served": served,
        "tenants_retrained": sum(
            1 for v in stats.values() if v["retrains"] > 0
        ),
        "tenants_deployed": sum(1 for v in stats.values() if v["deploys"] > 0),
        "holdout_qerror_geomean": round(_geomean(qerrs.values()), 4),
        "per_tenant": {
            t: {
                "retrains": stats[t]["retrains"],
                "deploys": stats[t]["deploys"],
                "drift_detections": stats[t]["drift_detections"],
                "holdout_qerror": round(qerrs[t], 4),
            }
            for t in sorted(stats)
        },
    }


def fleet_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 2: concurrent drift recovery across the schema fleet.

    Two arms over identical schemas, streams and drift: ``closed`` (the
    full trigger/retrain/gate/deploy loop per schema) and ``frozen`` (no
    triggers -- the model that was live at t=0 stays live)."""
    p = _profile(profile)
    out = {}
    for label, closed in (("closed", True), ("frozen", False)):
        fleet = transfer_fleet_scenario(
            n_schemas=p["fleet_schemas"],
            seed=seed,
            queries_per_tenant=p["fleet_queries"],
            closed_loop=closed,
        )
        fleet.run()
        out[label] = _fleet_summary(fleet)
    out["qerror_improvement"] = round(
        out["frozen"]["holdout_qerror_geomean"]
        / out["closed"]["holdout_qerror_geomean"],
        4,
    )
    return out


def determinism_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 3: two fresh same-seed fleets export identical bytes."""
    p = _profile(profile)
    exports, fingerprints = [], []
    for _ in range(2):
        fleet = transfer_fleet_scenario(
            n_schemas=p["fleet_schemas"],
            seed=seed,
            queries_per_tenant=p["fleet_queries"],
        )
        fleet.run()
        exports.append(fleet.export_json(include_traces=True))
        fingerprints.append(fleet.fingerprints())
    return {
        "byte_identical": exports[0] == exports[1],
        "fingerprints_identical": fingerprints[0] == fingerprints[1],
        "export_bytes": len(exports[0]),
        "fingerprints": fingerprints[0],
        "telemetry": json.loads(exports[0]),
    }


def transfer_export(seed: int = 0, profile: str | None = None) -> str:
    """The full deterministic report: all three gates, one JSON blob."""
    payload = {
        "profile": profile or PROFILE,
        "seed": seed,
        "transfer": transfer_pass(seed=seed, profile=profile),
        "fleet": fleet_pass(seed=seed, profile=profile),
        "determinism": determinism_pass(seed=seed, profile=profile),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def _transfer_table(out: dict, title: str) -> str:
    rows = [
        (
            t["schema"],
            t["zeroshot_qerror"],
            t["random_qerror"],
            t["ceiling_qerror"],
        )
        for t in out["targets"]
    ]
    rows.append(
        (
            "geomean",
            out["zeroshot_geomean"],
            out["random_geomean"],
            out["ceiling_geomean"],
        )
    )
    return render_table(
        title,
        ["target schema", "zeroshot_q", "random_q", "ceiling_q"],
        rows,
        note=(
            f"random_advantage={out['random_advantage']}x "
            f"(gate >= {_MIN_RANDOM_ADVANTAGE}), "
            f"ceiling_gap={out['ceiling_gap']}x (gate <= {_MAX_CEILING_GAP})"
        ),
    )


def _fleet_table(out: dict, title: str) -> str:
    rows = [
        (
            arm,
            out[arm]["served"],
            out[arm]["tenants_retrained"],
            out[arm]["tenants_deployed"],
            out[arm]["holdout_qerror_geomean"],
        )
        for arm in ("closed", "frozen")
    ]
    return render_table(
        title,
        ["arm", "served", "retrained", "deployed", "holdout_qerr_geomean"],
        rows,
        note=f"closed-loop q-error improvement {out['qerror_improvement']}x",
    )


def test_p10_zero_shot_transfer_beats_random_within_ceiling():
    out = transfer_pass(seed=0)
    print(_transfer_table(out, f"P10: zero-shot transfer ({PROFILE})"))
    assert out["n_targets"] >= 2
    assert out["random_advantage"] >= _MIN_RANDOM_ADVANTAGE, (
        f"zero-shot only {out['random_advantage']}x better than random "
        f"(needs >= {_MIN_RANDOM_ADVANTAGE}x)"
    )
    assert out["ceiling_gap"] <= _MAX_CEILING_GAP, (
        f"zero-shot {out['ceiling_gap']}x off the train-on-target ceiling "
        f"(needs <= {_MAX_CEILING_GAP}x)"
    )


def test_p10_fleet_drift_recovery():
    out = fleet_pass(seed=0)
    print(_fleet_table(out, f"P10: fleet drift recovery ({PROFILE})"))
    closed, frozen = out["closed"], out["frozen"]
    assert closed["n_schemas"] >= 8
    assert closed["served"] == closed["n_requests"], "closed fleet dropped requests"
    assert frozen["served"] == frozen["n_requests"], "frozen fleet dropped requests"
    # the loop actually closes on (nearly) every schema ...
    assert closed["tenants_retrained"] >= closed["n_schemas"] - 1, (
        f"only {closed['tenants_retrained']}/{closed['n_schemas']} "
        "schemas retrained after the fleet-wide drift"
    )
    assert frozen["tenants_retrained"] == 0
    # ... and recovery beats the frozen control
    assert (
        closed["holdout_qerror_geomean"] <= frozen["holdout_qerror_geomean"]
    ), (
        f"closed loop ({closed['holdout_qerror_geomean']}) worse than "
        f"frozen control ({frozen['holdout_qerror_geomean']})"
    )


def test_p10_determinism_byte_identical_exports():
    out = determinism_pass(seed=3)
    assert out["byte_identical"], "same-seed fleet exports diverged"
    assert out["fingerprints_identical"], "same-seed schema fingerprints diverged"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic transfer report (JSON) here",
    )
    args = parser.parse_args(argv)
    blob = transfer_export(seed=args.seed, profile=args.profile)
    payload = json.loads(blob)
    print(
        _transfer_table(
            payload["transfer"],
            f"P10: zero-shot transfer ({args.profile}), seed={args.seed}",
        )
    )
    print(_fleet_table(payload["fleet"], "P10: fleet drift recovery"))
    transfer, fleet = payload["transfer"], payload["fleet"]
    ok = transfer["random_advantage"] >= _MIN_RANDOM_ADVANTAGE
    ok = ok and transfer["ceiling_gap"] <= _MAX_CEILING_GAP
    ok = ok and (
        fleet["closed"]["holdout_qerror_geomean"]
        <= fleet["frozen"]["holdout_qerror_geomean"]
    )
    ok = ok and payload["determinism"]["byte_identical"]
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(blob)
        print(f"transfer report written to {args.export}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
