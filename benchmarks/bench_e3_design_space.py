"""E3: design-space exploration of learned estimators ([53]-style).

Sweeps the training-set size for the query-driven family and reports the
accuracy / training-cost / inference-latency trade-off grid that guides
practitioners' model choice.  Data-driven models (no workload needed) are
included as horizontal reference lines.

Expected shape: query-driven accuracy improves with training data and
plateaus; GBDT is the cheapest to train; data-driven models match or beat
the largest-workload query-driven models on this single-schema setting.
"""

import time

from repro.bench import build_estimator, estimate_workload, render_table
from repro.cardest.base import q_error_summary

TRAIN_SIZES = [50, 150, 400]
QUERY_DRIVEN = ["linear", "gbdt", "mlp", "mscn"]
DATA_DRIVEN = ["bayesnet", "fspn"]


def test_e3_design_space(benchmark, stats_db, stats_train, stats_test):
    train_q, train_c = stats_train
    test_q, test_c = stats_test

    def run():
        rows = []
        gmq_by_size = {m: [] for m in QUERY_DRIVEN}
        for name in QUERY_DRIVEN:
            for n in TRAIN_SIZES:
                est = build_estimator(name, stats_db, budget="full")
                t0 = time.perf_counter()
                est.fit(train_q[:n], train_c[:n])
                train_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                preds = estimate_workload(est, test_q)
                infer_ms = (time.perf_counter() - t0) / len(test_q) * 1000
                s = q_error_summary(preds, test_c)
                gmq_by_size[name].append(s["gmq"])
                rows.append((name, n, s["gmq"], s["p90"], train_s, infer_ms))
        for name in DATA_DRIVEN:
            t0 = time.perf_counter()
            est = build_estimator(name, stats_db, budget="full")
            train_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            preds = estimate_workload(est, test_q)
            infer_ms = (time.perf_counter() - t0) / len(test_q) * 1000
            s = q_error_summary(preds, test_c)
            rows.append((name, "(data)", s["gmq"], s["p90"], train_s, infer_ms))
        return rows, gmq_by_size

    rows, gmq_by_size = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E3: accuracy vs training size vs cost (stats_lite)",
            ["method", "train_n", "gmq", "p90", "train_s", "infer_ms"],
            rows,
            note="query-driven gmq should fall (or plateau) as training data grows",
        )
    )
    improving = sum(
        1 for name in QUERY_DRIVEN if gmq_by_size[name][-1] <= gmq_by_size[name][0] * 1.1
    )
    assert improving >= 3, "most query-driven methods should benefit from data"
