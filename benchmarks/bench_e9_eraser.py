"""E9: regression elimination with Eraser ([62]) and PerfGuard ([18]).

Each learned optimizer runs the same workload three times: unguarded, with
Eraser, and with PerfGuard.  Reported: workload speedup kept, number of
regressions (>1.1x) and the worst regression on the post-warm-up tail,
plus the guard's intervention rate.

Expected shape ([62]): Eraser removes most of the regression *tail* while
keeping a meaningful share of the improvement; PerfGuard is the
conservative extreme -- near-zero regressions, little improvement kept.
"""

import numpy as np

from repro.bench import render_table
from repro.costmodel import PlanFeaturizer
from repro.e2e import BaoOptimizer, LeroOptimizer, OptimizationLoop
from repro.regression import Eraser, PerfGuard
from repro.sql import WorkloadGenerator


def test_e9_regression_elimination(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    workload = WorkloadGenerator(imdb_db, seed=41).workload(
        220, 2, 5, require_predicate=True
    )
    train = WorkloadGenerator(imdb_db, seed=42).workload(
        50, 2, 5, require_predicate=True
    )
    featurizer = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)

    def make_learned(kind):
        if kind == "bao":
            return BaoOptimizer(imdb_optimizer, seed=0)
        lero = LeroOptimizer(imdb_optimizer, seed=0)
        lero.train_offline(train, imdb_simulator.latency)
        return lero

    def run():
        rows = []
        outcomes = {}
        for kind in ("bao", "lero"):
            for guard_name in ("none", "eraser", "perfguard"):
                guard = None
                if guard_name == "eraser":
                    guard = Eraser(featurizer)
                elif guard_name == "perfguard":
                    guard = PerfGuard(featurizer)
                loop = OptimizationLoop(
                    make_learned(kind), imdb_simulator, imdb_optimizer, guard=guard
                )
                loop.run(workload)
                s = loop.summary(tail=110)
                outcomes[(kind, guard_name)] = s
                rows.append(
                    (
                        kind,
                        guard_name,
                        s["workload_speedup"],
                        s["n_regressions"],
                        s["worst_regression"],
                        guard.intervention_rate if guard else 0.0,
                    )
                )
        return rows, outcomes

    rows, outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E9: learned optimizers x regression guards (tail of 110 queries)",
            ["optimizer", "guard", "speedup", "regressions", "worst", "intervention"],
            rows,
            note="guards trade improvement for tail safety; perfguard is the conservative extreme",
        )
    )
    for kind in ("bao", "lero"):
        none = outcomes[(kind, "none")]
        eraser = outcomes[(kind, "eraser")]
        pg = outcomes[(kind, "perfguard")]
        # PerfGuard's contract: (almost) no regressions left.
        assert pg["worst_regression"] <= max(none["worst_regression"], 1.3)
        # Eraser keeps a working optimizer (not a catastrophic one).
        assert eraser["workload_speedup"] > 0.85
