"""Registry of the runnable experiments in this directory.

One entry per ``bench_*.py`` module: the E-series reproduces the paper's
tables/figures (see EXPERIMENTS.md), the T-series is the taxonomy sweep,
and the P-series benchmarks this repo's own performance layers (batching /
caching, serving).  The registry is plain data -- importing this package
must stay free of ``repro`` imports so pytest can collect benchmark
modules before the conftest path bootstrap runs; use :func:`load` to
import one benchmark's module lazily.
"""

from __future__ import annotations

import importlib

#: registry key -> (module name, one-line description)
BENCHMARKS: dict[str, tuple[str, str]] = {
    "e1": ("bench_e1_single_table", "single-table estimators (Table 1)"),
    "e2": ("bench_e2_dynamic_drift", "estimator accuracy under data drift"),
    "e3": ("bench_e3_design_space", "query-driven design-space sweep"),
    "e4": ("bench_e4_e2e_injection", "cardinality injection end-to-end"),
    "e5": ("bench_e5_cost_models", "learned cost model comparison"),
    "e6": ("bench_e6_join_order", "join-order search strategies"),
    "e7": ("bench_e7_bao", "Bao hint-set steering"),
    "e8": ("bench_e8_lero", "Lero pairwise plan ranking"),
    "e9": ("bench_e9_eraser", "Eraser regression elimination"),
    "e10": ("bench_e10_pilotscope", "PilotScope middleware overhead"),
    "e11": ("bench_e11_framework_ablation", "unified-framework ablation"),
    "e12": ("bench_e12_mixed_predicates", "mixed/disjunctive predicates"),
    "e13": ("bench_e13_zeroshot_transfer", "zero-shot cost transfer"),
    "t1": ("bench_t1_taxonomy", "taxonomy-wide estimator sweep"),
    "p1": (
        "bench_p1_inference_throughput",
        "batched inference + cardinality-cache hit rate",
    ),
    "p2": (
        "bench_p2_serving",
        "serving runtime: sustained qps, tail latency, determinism",
    ),
    "p3": (
        "bench_p3_chaos",
        "serving stack under deterministic fault injection",
    ),
    "p4": (
        "bench_p4_lifecycle",
        "model lifecycle: experience store, registry, retraining",
    ),
    "p5": (
        "bench_p5_oracle",
        "plan-correctness oracle: clean run, mutation catch rate, determinism",
    ),
    "p6": (
        "bench_p6_fastpath",
        "vectorized kernels + plan-cache fast path: speedups, hit rate, exactness",
    ),
    "p7": (
        "bench_p7_rewrite",
        "learned query rewriting: oracle cleanliness, promotion gates, feedback",
    ),
    "p8": (
        "bench_p8_bounds",
        "pessimistic bounds: soundness, guard visibility, risk-bounded p99",
    ),
    "p9": (
        "bench_p9_fabric",
        "sharded fabric: 10^5-query scale-out, tenant isolation, determinism",
    ),
    "p10": (
        "bench_p10_transfer",
        "cross-schema transfer: zero-shot q-error gates, schema-fleet drift recovery",
    ),
}


def load(key: str):
    """Import and return one registered benchmark module by key."""
    try:
        module, _ = BENCHMARKS[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {key!r}; registered: {sorted(BENCHMARKS)}"
        ) from None
    return importlib.import_module(f"benchmarks.{module}")
