"""E12: mixed conjunctive/disjunctive predicates (Mueller et al. [42]).

[42] shows that ML estimators trained on conjunctive-only featurizations
degrade on workloads with disjunctions, and that featurizing the
disjunction structure recovers most of the loss.  This bench compares each
estimator family on a conjunctive-only workload vs. a 50%-disjunctive
workload (same generator seed), both when the supervised models trained
*with* and *without* disjunctive examples.

Expected shape: data-driven models (bin-union evaluation) degrade little;
supervised models trained conjunctive-only degrade most on the mixed
workload; retraining on mixed examples recovers accuracy.
"""

import numpy as np

from repro.bench import estimate_workload, render_table
from repro.cardest import (
    FSPNEstimator,
    GBDTQueryEstimator,
    HistogramEstimator,
    MSCNEstimator,
)
from repro.cardest.base import q_error_summary
from repro.sql import WorkloadGenerator


def test_e12_mixed_predicates(benchmark, stats_db, stats_executor):
    conj_train_gen = WorkloadGenerator(stats_db, seed=1)
    mixed_train_gen = WorkloadGenerator(stats_db, seed=1, or_rate=0.5)
    conj_train = conj_train_gen.workload(350, 1, 3, require_predicate=True)
    mixed_train = mixed_train_gen.workload(350, 1, 3, require_predicate=True)
    conj_cards = np.array([stats_executor.cardinality(q) for q in conj_train])
    mixed_cards = np.array([stats_executor.cardinality(q) for q in mixed_train])

    conj_test = WorkloadGenerator(stats_db, seed=97).workload(
        100, 1, 3, require_predicate=True
    )
    mixed_test = WorkloadGenerator(stats_db, seed=97, or_rate=0.5).workload(
        100, 1, 3, require_predicate=True
    )
    conj_truth = np.array([stats_executor.cardinality(q) for q in conj_test])
    mixed_truth = np.array([stats_executor.cardinality(q) for q in mixed_test])

    def gmq(est, queries, truth):
        return q_error_summary(estimate_workload(est, queries), truth)["gmq"]

    def run():
        rows = []
        results = {}
        # Non-learned / data-driven: one model serves both workloads.
        for name, est in (
            ("histogram", HistogramEstimator(stats_db)),
            ("fspn", FSPNEstimator(stats_db)),
        ):
            conj = gmq(est, conj_test, conj_truth)
            mixed = gmq(est, mixed_test, mixed_truth)
            results[name] = (conj, mixed, mixed)
            rows.append((name, conj, mixed, mixed))
        # Supervised: conjunctive-only training vs mixed training.
        for name, factory in (
            ("gbdt", lambda: GBDTQueryEstimator(stats_db)),
            ("mscn", lambda: MSCNEstimator(stats_db, epochs=60)),
        ):
            conj_model = factory().fit(conj_train, conj_cards)
            mixed_model = factory().fit(mixed_train, mixed_cards)
            conj = gmq(conj_model, conj_test, conj_truth)
            naive = gmq(conj_model, mixed_test, mixed_truth)
            aware = gmq(mixed_model, mixed_test, mixed_truth)
            results[name] = (conj, naive, aware)
            rows.append((name, conj, naive, aware))
        return rows, results

    rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E12: gmq on conjunctive vs 50%-disjunctive workloads (stats_lite)",
            ["method", "conj-only", "mixed (conj-trained)", "mixed (mixed-trained)"],
            rows,
            note="supervised models need disjunctive training examples; data-driven do not",
        )
    )
    for name in ("gbdt", "mscn"):
        conj, naive, aware = results[name]
        # Training on the mixed workload must not be worse than pretending
        # disjunctions do not exist.
        assert aware <= naive * 1.1, name
    # The data-driven model handles disjunctions without any retraining.
    fspn_conj, fspn_mixed, _ = results["fspn"]
    assert fspn_mixed <= fspn_conj * 2.5
