"""P8: pessimistic cardinality bounds and the bound-violation guard.

Four properties are measured and gated:

1. **Bound soundness**: on clean code both pessimistic estimators (the
   MCV join bound and the AGM-style sketch bound) must satisfy
   ``bound >= exact count`` on every enumerated connected subquery of the
   workload, pass the standard estimator contracts, and dominate the
   traditional point estimator (within interpolation slack) -- **zero
   violations**.
2. **Guard visibility**: under an injected fault storm every estimate
   that crosses its certified bound must trip the
   :class:`repro.faults.BoundGuard` -- counters, ``bounds.*`` telemetry
   and ``bound_violation`` events must all agree, the circuit breaker
   must open, and a fault-free run of the same scenario must report zero
   violations and zero trips.
3. **Risk-bounded planning pays off**: under adversarial hot-key drift
   (stale point statistics believe the exploding joins are empty), the
   pessimistic arm (``risk="worst_case"`` + refreshed bounds) must beat
   the optimistic arm on p99 serving latency.
4. **Determinism**: two same-seed runs must export byte-identical
   reports and telemetry.

Profiles: ``quick`` (CI smoke) or ``full``; as a script
(``python benchmarks/bench_p8_bounds.py --profile quick --export out.json``)
it prints the gate tables and writes the deterministic export that CI
diffs across two runs.
"""

import argparse
import json
import os

import numpy as np

from repro.bench import render_bounds_stats, render_table
from repro.cardest.bounds import AGMSketchBoundEstimator, MCVJoinBoundEstimator
from repro.engine import CardinalityExecutor
from repro.faults import FaultPlan
from repro.optimizer import TraditionalCardinalityEstimator
from repro.oracle import EstimatorContractChecker
from repro.serve import adversarial_drift_scenario, bound_guard_scenario
from repro.sql import WorkloadGenerator
from repro.storage.datasets import make_stats_lite

_PROFILES = {
    "quick": {
        "scale": 0.2,
        "n_queries": 16,
        "serve_queries": 64,
        "n_sessions": 4,
        "drift_queries": 90,
    },
    "full": {
        "scale": 0.3,
        "n_queries": 24,
        "serve_queries": 120,
        "n_sessions": 8,
        "drift_queries": 120,
    },
}
PROFILE = os.environ.get("BOUNDS_PROFILE", "quick")
# Histogram interpolation on narrow ranges can put the point estimate a
# few percent above the (near-exact) sketch bound; a real undercounting
# bug (e.g. the /8 bound_undercounts mutation) blows well past this.
_DOMINATES_SLACK = 1.1


def _profile(profile: str | None) -> dict:
    return _PROFILES[profile or PROFILE]


def soundness_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 1: zero bound violations for both pessimistic estimators."""
    p = _profile(profile)
    db = make_stats_lite(scale=p["scale"], seed=seed)
    queries = WorkloadGenerator(db, seed=seed + 17).workload(
        p["n_queries"], 1, 3, require_predicate=True
    )
    executor = CardinalityExecutor(db)
    point = TraditionalCardinalityEstimator(db)
    out = {}
    for est in (MCVJoinBoundEstimator(db), AGMSketchBoundEstimator(db)):
        checker = EstimatorContractChecker(db, est)
        violations = list(checker.check_workload(queries))
        violations += checker.check_bound_soundness(queries, executor=executor)
        violations += checker.check_bound_dominates(
            point, queries, tolerance=_DOMINATES_SLACK
        )
        out[type(est).__name__] = {
            "checks": checker.checks_run,
            "violations": sorted(str(v) for v in violations),
        }
    return out


def guard_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 2: faulted run trips visibly; clean run stays silent."""
    p = _profile(profile)
    results = {}
    for label, plan in (("faulted", None), ("clean", FaultPlan(()))):
        scenario = bound_guard_scenario(
            scale=p["scale"],
            seed=seed,
            n_queries=p["serve_queries"],
            n_sessions=p["n_sessions"],
            plan=plan,
        )
        scenario.run()
        guard = scenario.bound_guard
        snap = scenario.runtime.telemetry.snapshot()
        counters = snap["counters"]
        events = [
            e for e in snap["events"] if e.get("kind") == "bound_violation"
        ]
        results[label] = {
            "stats": guard.stats(),
            "telemetry": {
                k: v for k, v in sorted(counters.items())
                if k.startswith("bounds.")
            },
            "events": len(events),
        }
    return results


def drift_pass(seed: int = 0, profile: str | None = None) -> dict:
    """Gate 3: p99 latency, optimistic vs pessimistic, same drift."""
    p = _profile(profile)
    out = {}
    for arm, pessimistic in (("optimistic", False), ("pessimistic", True)):
        scenario = adversarial_drift_scenario(
            pessimistic=pessimistic,
            scale=p["scale"],
            seed=seed,
            n_queries=p["drift_queries"],
            n_sessions=p["n_sessions"],
        )
        report = scenario.run()
        lat = np.array(
            [r.latency_ms for r in report.outcomes if hasattr(r, "latency_ms")]
        )
        out[arm] = {
            "served": int(lat.size),
            "rejected": int(report.n_requests - lat.size),
            "p50_ms": round(float(np.percentile(lat, 50)), 4),
            "p99_ms": round(float(np.percentile(lat, 99)), 4),
            "max_ms": round(float(lat.max()), 4),
        }
    return out


def bounds_export(seed: int = 0, profile: str | None = None) -> str:
    """The full deterministic report: all three gates, one JSON blob."""
    payload = {
        "profile": profile or PROFILE,
        "seed": seed,
        "soundness": soundness_pass(seed=seed, profile=profile),
        "guard": guard_pass(seed=seed, profile=profile),
        "drift": drift_pass(seed=seed, profile=profile),
    }
    return json.dumps(payload, sort_keys=True, indent=1)


def test_p8_bound_soundness_zero_violations():
    out = soundness_pass(seed=0)
    rows = []
    for name, res in sorted(out.items()):
        rows.append((name, res["checks"], len(res["violations"])))
        assert res["checks"] > 0, f"{name} ran no checks"
        assert not res["violations"], (
            f"{name} bound violations:\n" + "\n".join(res["violations"])
        )
    print(
        render_table(
            f"P8: bound soundness ({PROFILE})",
            ["estimator", "checks", "violations"],
            rows,
        )
    )


def test_p8_guard_trips_are_visible():
    results = guard_pass(seed=0)
    faulted, clean = results["faulted"], results["clean"]
    stats = faulted["stats"]
    assert stats["estimate_violations"] > 0, "fault storm tripped nothing"
    assert stats["breaker_trips"] >= 1, "breaker never opened under faults"
    assert stats["fallback_served"] > 0, "no fallback routing under faults"
    tele = faulted["telemetry"]
    assert tele.get("bounds.checked", 0) == stats["checked"]
    assert tele.get("bounds.estimate_violations", 0) == stats["estimate_violations"]
    violations = stats["estimate_violations"] + stats["bound_violations"]
    assert faulted["events"] == violations, (
        f"{violations} violations but {faulted['events']} events"
    )
    assert clean["stats"]["estimate_violations"] == 0, "clean run tripped"
    assert clean["stats"]["bound_violations"] == 0
    assert clean["stats"]["breaker_trips"] == 0
    assert clean["events"] == 0
    print(render_bounds_stats(stats, title=f"P8: guard under faults ({PROFILE})"))
    print(
        render_bounds_stats(
            clean["stats"], title="P8: guard on clean serving"
        )
    )


def test_p8_pessimistic_p99_beats_optimistic_under_drift():
    out = drift_pass(seed=0)
    print(
        render_table(
            f"P8: adversarial drift, optimistic vs pessimistic ({PROFILE})",
            ["arm", "served", "rejected", "p50_ms", "p99_ms", "max_ms"],
            [
                (arm, r["served"], r["rejected"], r["p50_ms"], r["p99_ms"], r["max_ms"])
                for arm, r in sorted(out.items())
            ],
            note="same seed, same workload, same drift; only the risk mode differs",
        )
    )
    assert out["pessimistic"]["p99_ms"] < out["optimistic"]["p99_ms"], (
        f"pessimistic p99 {out['pessimistic']['p99_ms']} did not beat "
        f"optimistic {out['optimistic']['p99_ms']}"
    )


def test_p8_determinism_same_seed_same_export():
    exports, telemetry = [], []
    for _ in range(2):
        exports.append(bounds_export(seed=3))
        scenario = bound_guard_scenario(
            scale=0.2, seed=3, n_queries=48, n_sessions=4
        )
        scenario.run()
        telemetry.append(scenario.runtime.telemetry.to_json())
    assert exports[0] == exports[1], "same-seed bound reports diverged"
    assert telemetry[0] == telemetry[1], "same-seed guard telemetry diverged"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", choices=sorted(_PROFILES), default="quick")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--export", metavar="PATH",
        help="write the deterministic bounds report (JSON) here",
    )
    args = parser.parse_args(argv)
    blob = bounds_export(seed=args.seed, profile=args.profile)
    payload = json.loads(blob)
    ok = True
    rows = []
    for name, res in sorted(payload["soundness"].items()):
        rows.append((name, res["checks"], len(res["violations"])))
        ok = ok and not res["violations"]
    print(
        render_table(
            f"P8: bound soundness ({args.profile}), seed={args.seed}",
            ["estimator", "checks", "violations"],
            rows,
            note="zero violations expected on clean code",
        )
    )
    print(
        render_bounds_stats(
            payload["guard"]["faulted"]["stats"], title="P8: guard under faults"
        )
    )
    drift = payload["drift"]
    print(
        render_table(
            "P8: adversarial drift p99",
            ["arm", "served", "rejected", "p50_ms", "p99_ms", "max_ms"],
            [
                (arm, r["served"], r["rejected"], r["p50_ms"], r["p99_ms"], r["max_ms"])
                for arm, r in sorted(drift.items())
            ],
        )
    )
    ok = ok and payload["guard"]["faulted"]["stats"]["estimate_violations"] > 0
    ok = ok and payload["guard"]["clean"]["stats"]["estimate_violations"] == 0
    ok = ok and drift["pessimistic"]["p99_ms"] < drift["optimistic"]["p99_ms"]
    if args.export:
        with open(args.export, "w") as fh:
            fh.write(blob)
        print(f"bounds report written to {args.export}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
