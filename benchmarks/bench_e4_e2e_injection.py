"""E4: multi-join estimation + end-to-end plan quality (STATS-benchmark
style, [12]).

For each estimator, all sub-query cardinalities of every test query are
injected into the native planner (PilotScope's batch-injection interface),
the chosen plan is executed on the simulator, and both the estimation
accuracy (q-error over all injected sub-queries) and the end-to-end
workload latency are reported -- with true-cardinality injection as the
oracle lower line.

Expected shape ([12]): better sub-query estimates give better plans but
gains saturate; join-aware methods (FactorJoin/NeuroCard-style) estimate
multi-join queries better than uniformity-composed per-table models;
nobody beats the oracle.
"""

import numpy as np

from repro.bench import render_table
from repro.cardest import (
    FactorJoinEstimator,
    FSPNEstimator,
    HistogramEstimator,
    MSCNEstimator,
    NeuroCardEstimator,
)
from repro.cardest.base import q_error_summary
from repro.core.interfaces import InjectedCardinalities
from repro.pilotscope.interactor import enumerate_subqueries
from repro.sql import WorkloadGenerator


def test_e4_injection(benchmark, stats_db, stats_executor, stats_optimizer,
                      stats_simulator, stats_train):
    gen = WorkloadGenerator(stats_db, seed=55)
    # Fixed join templates keep NeuroCard's per-template training bounded.
    workload = (
        gen.join_template_workload(["posts", "users"], 25)
        + gen.join_template_workload(["comments", "posts", "users"], 25)
        + gen.join_template_workload(["posts", "users", "votes"], 25)
    )

    train_q, train_c = stats_train

    def run():
        class Oracle:
            name = "oracle(true cards)"

            def estimate(self, query):
                return stats_executor.cardinality(query)

        estimators = [
            HistogramEstimator(stats_db),
            MSCNEstimator(stats_db, epochs=60).fit(train_q, train_c),
            FSPNEstimator(stats_db),
            FactorJoinEstimator(stats_db),
            NeuroCardEstimator(stats_db, epochs=10, n_samples=1200),
            Oracle(),
        ]
        rows = []
        latencies = {}
        for est in estimators:
            injected = InjectedCardinalities(stats_optimizer.estimator)
            opt = stats_optimizer.with_estimator(injected)
            total_latency = 0.0
            sub_preds, sub_truth = [], []
            for q in workload:
                injected.clear()
                for sub in enumerate_subqueries(q):
                    guess = max(est.estimate(sub), 0.0)
                    injected.inject(sub, guess)
                    sub_preds.append(guess)
                    sub_truth.append(stats_executor.cardinality(sub))
                plan = opt.plan(q)
                total_latency += stats_simulator.execute(plan).latency_ms
            s = q_error_summary(np.array(sub_preds), np.array(sub_truth))
            latencies[est.name] = total_latency
            rows.append((est.name, s["p50"], s["p90"], s["max"], total_latency))
        return rows, latencies

    rows, latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    oracle_lat = latencies["oracle(true cards)"]
    rows = [r + (r[4] / oracle_lat,) for r in rows]
    print(
        render_table(
            "E4: sub-query q-error -> end-to-end workload latency (75 join queries)",
            ["estimator", "sub_p50", "sub_p90", "sub_max", "latency_ms", "vs_oracle"],
            rows,
            note="oracle = exact cardinalities injected; plan-quality gains saturate",
        )
    )
    for name, lat in latencies.items():
        assert lat >= oracle_lat * 0.98, f"{name} beat the oracle: impossible"
    assert latencies["histogram"] >= oracle_lat
