"""E5: learned cost models vs the traditional cost model (§2.1.2).

A corpus of executed plans (all Bao arms over a join workload) is split
train/test; each model predicts held-out latencies.  Reported: Spearman
rank correlation (what matters for plan *selection*), median relative
error, and training time.  The traditional cost model's own cost value is
the baseline "prediction".

Expected shape: plan-structured deep models (tree-conv, tree-recurrent)
rank plans better than the flat linear model; the traditional cost model
ranks decently but is miscalibrated in absolute terms (it is the
simulator's own formulas with *estimated* cards and planner constants).
"""

import time

import numpy as np
from scipy.stats import spearmanr

from repro.bench import render_table
from repro.costmodel import (
    CalibratedCostModel,
    LinearPlanCostModel,
    PlanFeaturizer,
    TreeConvCostModel,
    TreeRecurrentCostModel,
    UnifiedTransferableModel,
    ZeroShotCostModel,
)
from repro.engine import CardinalityExecutor
from repro.optimizer import HintSet
from repro.sql import WorkloadGenerator


def test_e5_cost_models(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    gen = WorkloadGenerator(imdb_db, seed=5)
    plans, lats = [], []
    for q in gen.workload(80, 2, 5, require_predicate=True):
        for arm in HintSet.bao_arms()[:5]:
            p = imdb_optimizer.plan(q, hints=arm)
            plans.append(p)
            lats.append(imdb_simulator.execute(p).latency_ms)
    lats = np.array(lats)
    n_train = int(len(plans) * 0.7)
    featurizer = PlanFeaturizer(imdb_db, imdb_optimizer.estimator)

    def run():
        rows = []
        rhos = {}

        def evaluate(name, predict, train_s):
            preds = np.array([predict(p) for p in plans[n_train:]])
            truth = lats[n_train:]
            rho = float(spearmanr(preds, truth).statistic)
            rel = float(np.median(np.abs(preds - truth) / np.maximum(truth, 1e-9)))
            rhos[name] = rho
            rows.append((name, rho, rel, train_s))

        evaluate(
            "traditional(cost)",
            lambda p: imdb_optimizer.cost(p),
            0.0,
        )
        t0 = time.perf_counter()
        linear = LinearPlanCostModel(featurizer).fit(plans[:n_train], lats[:n_train])
        evaluate("linear", linear.predict_latency, time.perf_counter() - t0)
        t0 = time.perf_counter()
        tc = TreeConvCostModel(featurizer, epochs=50).fit(plans[:n_train], lats[:n_train])
        evaluate("tree_conv [39]", tc.predict_latency, time.perf_counter() - t0)
        t0 = time.perf_counter()
        tr = TreeRecurrentCostModel(featurizer, epochs=30).fit(
            plans[:n_train], lats[:n_train]
        )
        evaluate("tree_recurrent [51]", tr.predict_latency, time.perf_counter() - t0)
        t0 = time.perf_counter()
        zs = ZeroShotCostModel(epochs=50).fit([(featurizer, plans[:n_train], lats[:n_train])])
        evaluate(
            "zero_shot [16]",
            lambda p: zs.predict_latency(p, featurizer),
            time.perf_counter() - t0,
        )
        # BASE: calibrate the traditional cost to latency with few samples.
        t0 = time.perf_counter()
        base = CalibratedCostModel(imdb_optimizer).fit(
            plans[: min(n_train, 60)], lats[: min(n_train, 60)]
        )
        evaluate("base(calibrated) [5]", base.predict_latency, time.perf_counter() - t0)
        # MLMTF: multi-task pre-training (latency + cardinality heads).
        executor = CardinalityExecutor(imdb_db)
        cards = np.array(
            [executor.cardinality(p.query) for p in plans[:n_train]]
        )
        t0 = time.perf_counter()
        mlmtf = UnifiedTransferableModel(featurizer, seed=0)
        mlmtf.pretrain(plans[:n_train], lats[:n_train], cards, epochs=40)
        evaluate("mlmtf(multi-task) [66]", mlmtf.predict_latency, time.perf_counter() - t0)
        return rows, rhos

    rows, rhos = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E5: latency prediction on held-out plans (imdb_lite, 400 plans)",
            ["model", "spearman_rho", "median_rel_err", "train_s"],
            rows,
            note="rank correlation is what plan selection needs; deep models should lead",
        )
    )
    assert rhos["tree_conv [39]"] > 0.7
    assert rhos["tree_conv [39]"] >= rhos["linear"] - 0.05
    assert all(r > 0.3 for r in rhos.values())
    # BASE preserves the traditional model's (good) ranking by construction.
    assert rhos["base(calibrated) [5]"] >= rhos["traditional(cost)"] - 0.1
