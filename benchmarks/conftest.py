"""Shared benchmark fixtures.

Benchmarks use larger databases than the unit tests (scale 0.6-0.8) so the
reported shapes are stable; everything stays laptop-scale.

The ``sys.path`` bootstrap below makes ``python -m pytest benchmarks/...``
work from a plain checkout, exactly like ``tests/``: without it the
``repro`` package is only importable with ``PYTHONPATH=src`` or after
``pip install -e .``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.engine import CardinalityExecutor, ExecutionSimulator
from repro.optimizer import Optimizer
from repro.sql import WorkloadGenerator
from repro.storage import make_imdb_lite, make_stats_lite, make_tpch_lite


@pytest.fixture(scope="session")
def stats_db():
    return make_stats_lite(scale=0.6, seed=0)


@pytest.fixture(scope="session")
def imdb_db():
    return make_imdb_lite(scale=0.6, seed=0)


@pytest.fixture(scope="session")
def tpch_db():
    return make_tpch_lite(scale=0.6, seed=0)


@pytest.fixture(scope="session")
def stats_executor(stats_db):
    return CardinalityExecutor(stats_db)


@pytest.fixture(scope="session")
def stats_optimizer(stats_db):
    return Optimizer(stats_db)


@pytest.fixture(scope="session")
def stats_simulator(stats_db):
    return ExecutionSimulator(stats_db)


@pytest.fixture(scope="session")
def imdb_optimizer(imdb_db):
    return Optimizer(imdb_db)


@pytest.fixture(scope="session")
def imdb_simulator(imdb_db):
    return ExecutionSimulator(imdb_db)


@pytest.fixture(scope="session")
def stats_train(stats_db, stats_executor):
    gen = WorkloadGenerator(stats_db, seed=1)
    queries = gen.workload(400, 1, 4, require_predicate=True)
    cards = np.array([stats_executor.cardinality(q) for q in queries])
    return queries, cards


@pytest.fixture(scope="session")
def stats_test(stats_db, stats_executor):
    gen = WorkloadGenerator(stats_db, seed=97)
    queries = gen.workload(120, 1, 4, require_predicate=True)
    cards = np.array([stats_executor.cardinality(q) for q in queries])
    return queries, cards
