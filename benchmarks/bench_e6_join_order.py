"""E6: join-order search quality (§2.1.3).

Compares plan enumeration algorithms -- exhaustive DP, greedy, left-deep
DP -- against the learned searchers: offline RL (DQ [15]/ReJoin [24],
RTOS [73]) and online learners (SkinnerDB-style MCTS [56], Eddy-RL [58]).
Quality metric: executed-latency ratio to the DP plan; MCTS and Eddy see
true execution feedback, so they can *beat* DP (which optimizes the
miscalibrated cost model) -- SkinnerDB's core claim.
"""

import time

import numpy as np

from repro.bench import render_table
from repro.joinorder import (
    DQJoinOrderSearch,
    EddyJoinOrderSearch,
    MCTSJoinOrderSearch,
    RTOSJoinOrderSearch,
)
from repro.sql import WorkloadGenerator


def test_e6_join_order(benchmark, imdb_db, imdb_optimizer, imdb_simulator):
    gen = WorkloadGenerator(imdb_db, seed=11)
    train = gen.workload(40, 3, 5, require_predicate=True)
    test = WorkloadGenerator(imdb_db, seed=77).workload(
        25, 3, 5, require_predicate=True
    )

    def run():
        dq = DQJoinOrderSearch(imdb_optimizer, seed=0)
        dq.train(train, episodes_per_query=6)
        rtos = RTOSJoinOrderSearch(imdb_optimizer, seed=0)
        rtos.train(train[:25], episodes_per_query=4)
        mcts = MCTSJoinOrderSearch(
            imdb_optimizer, evaluate=imdb_simulator.latency, seed=0
        )
        eddy = EddyJoinOrderSearch(imdb_optimizer, seed=0)

        searchers = {
            "dp (exhaustive)": lambda q: imdb_optimizer.plan(q, algorithm="dp"),
            "greedy": lambda q: imdb_optimizer.plan(q, algorithm="greedy"),
            "left_deep dp": lambda q: imdb_optimizer.plan(q, algorithm="left_deep"),
            "dq/rejoin [15,24]": dq.search,
            "rtos [73]": rtos.search,
            "mcts/skinner [56]": lambda q: mcts.search(q, iterations=40)[0],
            "eddy_rl [58]": eddy.search,
        }
        dp_lat = {q: imdb_simulator.execute(searchers["dp (exhaustive)"](q)).latency_ms
                  for q in test}
        rows = []
        medians = {}
        for name, fn in searchers.items():
            ratios = []
            t0 = time.perf_counter()
            for q in test:
                lat = imdb_simulator.execute(fn(q)).latency_ms
                ratios.append(lat / max(dp_lat[q], 1e-9))
            plan_ms = (time.perf_counter() - t0) / len(test) * 1000
            medians[name] = float(np.median(ratios))
            rows.append(
                (name, float(np.median(ratios)), float(np.percentile(ratios, 90)),
                 float(max(ratios)), plan_ms)
            )
        return rows, medians

    rows, medians = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "E6: executed-latency ratio to the DP plan (imdb_lite, 3-5 way joins)",
            ["searcher", "median", "p90", "max", "search_ms/query"],
            rows,
            note="MCTS/Eddy learn from true latency and may beat DP's cost-model optimum",
        )
    )
    assert medians["mcts/skinner [56]"] <= 1.05
    assert medians["dq/rejoin [15,24]"] < 3.0
    assert medians["rtos [73]"] < 3.0
    assert medians["eddy_rl [58]"] < 2.0
    assert medians["greedy"] >= 0.99  # greedy cannot beat DP under same model
