"""P1: batched-inference throughput and the cross-plan cardinality cache.

The planner and the e2e optimizers (Bao's arm sweep, Lero's factor sweep)
ask for thousands of sub-query cardinalities per workload; this benchmark
measures the two mechanisms that make that affordable:

1. ``estimate_batch`` -- one featurization + one model forward pass for a
   whole workload, versus the per-query ``estimate`` loop.  Model-backed
   estimators (MLP, MSCN) must show a >= 5x speedup; loop-fallback
   estimators (histogram, sampling) are included as the "no batch
   implementation" reference and are only required not to regress.
2. ``CardinalityCache`` -- the shared cross-plan sub-query cache.  Bao
   re-plans every query once per hint-set arm; after the first arm almost
   every DP-subset estimate is a hit, so the hit rate on an arm sweep must
   exceed 50%.

Expected shape: MLP/MSCN batch at 5-10x their sequential throughput
(featurization amortizes, the forward pass almost vanishes); the cache hit
rate on the arm sweep lands near (arms-1)/arms.
"""

import time

import numpy as np

from repro.bench import (
    build_estimator,
    estimate_workload,
    render_cache_stats,
    render_table,
)
from repro.bench.suite import fit_estimator
from repro.optimizer import HintSet, Optimizer
from repro.sql import WorkloadGenerator

#: estimators with a real batched implementation -- must clear BATCH_SPEEDUP_MIN
BATCHED_METHODS = ["linear", "gbdt", "mlp", "mscn"]
#: loop-fallback reference points -- no speedup requirement
FALLBACK_METHODS = ["histogram", "sampling"]
BATCH_SPEEDUP_MIN = 5.0
CACHE_HIT_RATE_MIN = 0.5


def _throughput_row(name, est, queries):
    """(single us/q, batch us/q, ratio), best-of-rounds on both paths."""
    est.estimate_batch(queries)
    for q in queries:
        est.estimate(q)
    n = len(queries)
    single_us = np.inf
    for _ in range(3):
        t0 = time.perf_counter()
        for q in queries:
            est.estimate(q)
        single_us = min(single_us, (time.perf_counter() - t0) / n * 1e6)
    batch_us = np.inf
    for _ in range(5):
        t0 = time.perf_counter()
        batch = est.estimate_batch(queries)
        batch_us = min(batch_us, (time.perf_counter() - t0) / n * 1e6)
    return single_us, batch_us, single_us / batch_us, batch


def test_p1_batch_throughput(benchmark, stats_db, stats_train, stats_test):
    train_q, train_c = stats_train
    test_q, test_c = stats_test

    def run():
        rows = []
        ratios = {}
        for name in BATCHED_METHODS + FALLBACK_METHODS:
            est = build_estimator(name, stats_db, budget="fast")
            fit_estimator(est, train_q, train_c)
            single_us, batch_us, ratio, batch = _throughput_row(
                name, est, test_q
            )
            # The batch path must agree with the sequential path.
            seq = np.array([est.estimate(q) for q in test_q])
            assert np.allclose(batch, seq, rtol=1e-9, atol=1e-6), name
            ratios[name] = ratio
            rows.append((name, single_us, batch_us, ratio))
        return rows, ratios

    rows, ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_table(
            "P1: sequential vs batched inference (stats_lite, 120 queries)",
            ["method", "single_us_q", "batch_us_q", "speedup_x"],
            rows,
        )
    )
    for name in ["mlp", "mscn"]:
        assert ratios[name] >= BATCH_SPEEDUP_MIN, (
            f"{name}: batched speedup {ratios[name]:.1f}x below "
            f"{BATCH_SPEEDUP_MIN}x"
        )
    for name in FALLBACK_METHODS:
        # The loop fallback adds only clamping overhead; anything near 1x
        # (or better) is fine, a large slowdown would mean a broken path.
        assert ratios[name] > 0.5, f"{name}: fallback regressed ({ratios[name]:.2f}x)"


def test_p1_planner_cache_hit_rate(benchmark, stats_db):
    gen = WorkloadGenerator(stats_db, seed=11)
    queries = gen.workload(20, 3, 5, require_predicate=True)
    arms = HintSet.bao_arms()

    def run():
        # Fresh optimizer = fresh cache; the Bao-style sweep re-plans every
        # query once per arm, exactly like HintSetExploration.candidates.
        optimizer = Optimizer(stats_db)
        for q in queries:
            for arm in arms:
                optimizer.plan(q, hints=arm)
        return optimizer.cache_stats()

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        render_cache_stats(
            stats,
            title=(
                f"P1: cardinality-cache stats, {len(queries)} queries x "
                f"{len(arms)} Bao arms"
            ),
        )
    )
    assert stats["hit_rate"] > CACHE_HIT_RATE_MIN, (
        f"planner cache hit rate {stats['hit_rate']:.3f} below "
        f"{CACHE_HIT_RATE_MIN}"
    )


def test_p1_estimate_workload_matches_loop(stats_db, stats_train, stats_test):
    """The bench-suite choke point agrees with the scalar loop for a
    batched estimator and a fallback estimator alike."""
    train_q, train_c = stats_train
    test_q, _ = stats_test
    for name in ["mlp", "histogram"]:
        est = build_estimator(name, stats_db, budget="fast")
        fit_estimator(est, train_q, train_c)
        batch = estimate_workload(est, test_q)
        seq = np.array([est.estimate(q) for q in test_q])
        assert np.allclose(batch, seq, rtol=1e-9, atol=1e-6), name
